/**
 * @file
 * Figure 10: the MPS case study — speedup of using all 80 SMs of a V100
 * over 40 SMs, in silicon, full simulation, 1B and PKA. Unlike Figure 9
 * this covers MLPerf too (the halved GPU is still a V100). The paper's
 * geomeans: silicon 1.24x, full sim 1.20x (MAE 9.3), 1B 1.32x (MAE
 * 24.9), PKA 1.22x (MAE 10.1).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiments.hh"
#include "silicon/silicon_gpu.hh"
#include "workload/suites.hh"

using namespace pka;

int
main()
{
    bench::configureSharedEngineFromEnv();

    bench::banner("Figure 10: 80-SM over 40-SM V100 speedup — silicon vs "
                  "full simulation vs 1B vs PKA");

    auto full_spec = silicon::voltaV100();
    auto half_spec = silicon::withSmCount(silicon::voltaV100(), 40);
    silicon::SiliconGpu gpu80(full_spec), gpu40(half_spec);
    sim::GpuSimulator sim80(full_spec), sim40(half_spec);

    common::TextTable t(
        {"workload", "silicon x", "full sim x", "1B x", "PKA x"});
    std::vector<double> s_sil, s_full, s_1b, s_pka;
    std::vector<double> ae_full, ae_1b, ae_pka, ae_pka_mlperf;

    for (const auto &pair : core::buildAllPairs()) {
        const auto &w = pair.traced;
        core::PkaAppResult res =
            core::runPka(w, pair.profiled, gpu80, sim80);
        if (res.excluded)
            continue;

        double sil =
            static_cast<double>(gpu40.run(w).totalCycles) /
            static_cast<double>(gpu80.run(w).totalCycles);
        s_sil.push_back(sil);

        double full = 0.0;
        bool has_full = core::isFullySimulable(w);
        if (has_full) {
            full = core::fullSimulate(sim40, w).cycles /
                   core::fullSimulate(sim80, w).cycles;
            s_full.push_back(full);
            ae_full.push_back(100.0 * std::abs(full - sil) / sil);

            auto b80 = core::firstNInstructions(
                sim80, w, core::k1BEquivalentInstructions);
            auto b40 = core::firstNInstructions(
                sim40, w, core::k1BEquivalentInstructions);
            double one_b =
                b40.projectedAppCycles / b80.projectedAppCycles;
            s_1b.push_back(one_b);
            ae_1b.push_back(100.0 * std::abs(one_b - sil) / sil);
        }

        core::PkpOptions pkp;
        auto p80 = core::simulateSelection(sim80, w, res.selection, &pkp);
        auto p40 = core::simulateSelection(sim40, w, res.selection, &pkp);
        double pka = p40.projectedCycles / p80.projectedCycles;
        s_pka.push_back(pka);
        ae_pka.push_back(100.0 * std::abs(pka - sil) / sil);
        if (!has_full)
            ae_pka_mlperf.push_back(ae_pka.back());

        t.row().cell(w.suite + "/" + w.name).num(sil, 2);
        if (has_full)
            t.num(full, 2).num(s_1b.back(), 2);
        else
            t.cell("*").cell("*");
        t.num(pka, 2);
    }
    t.print(std::cout);

    std::printf("\nGeoMean 80-SM-over-40-SM speedup:\n");
    std::printf("  Silicon: %.2fx (paper: 1.24x)\n",
                common::geomean(s_sil));
    std::printf("  FullSim: %.2fx (paper: 1.20x)  MAE %5.2f "
                "(paper: 9.32)\n",
                common::geomean(s_full), common::mean(ae_full));
    std::printf("  1B:      %.2fx (paper: 1.32x)  MAE %5.2f "
                "(paper: 24.88)\n",
                common::geomean(s_1b), common::mean(ae_1b));
    std::printf("  PKA:     %.2fx (paper: 1.22x)  MAE %5.2f "
                "(paper: 10.13)\n",
                common::geomean(s_pka), common::mean(ae_pka));
    std::printf("MLPerf-only PKA speedup error vs silicon:\n");
    std::printf("  MAE %.2f%% over %zu MLPerf workloads (paper: < 10%%)\n",
                common::mean(ae_pka_mlperf), ae_pka_mlperf.size());
    return 0;
}
