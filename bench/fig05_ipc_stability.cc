/**
 * @file
 * Figure 5: instantaneous IPC, L2 miss rate and DRAM utilization versus
 * time for a regular workload (atax) and an irregular one (BFS), with the
 * Principal Kernel Projection stopping points at s in {2.5, 0.25, 0.025}.
 * For each threshold the harness reports where PKP stops, the speedup of
 * stopping there, and the cycle-projection error versus running the
 * kernel to completion.
 */

#include <cinttypes>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/pkp.hh"
#include "silicon/gpu_spec.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

using namespace pka;

namespace
{

void
traceKernel(const sim::GpuSimulator &simulator,
            const workload::Workload &w, uint32_t launch_idx)
{
    const auto &k = w.launches[launch_idx];
    sim::SimOptions opts;
    opts.traceIpc = true;
    auto full = simulator.simulateKernel(k, w.seed, opts);

    std::printf("\nkernel %s (launch %u): %" PRIu64
                " cycles, %zu trace buckets, grid %" PRIu64
                " CTAs (wave %" PRIu64 ")\n",
                k.program->name.c_str(), k.launchId, full.cycles,
                full.trace.size(), full.totalCtas, full.waveSize);

    // Downsampled time series (the figure's three curves).
    common::TextTable ts({"cycle", "IPC", "L2 miss %", "DRAM util %"});
    size_t step = std::max<size_t>(1, full.trace.size() / 24);
    for (size_t i = 0; i < full.trace.size(); i += step) {
        const auto &s = full.trace[i];
        ts.row()
            .intCell(static_cast<long long>(s.cycle))
            .num(s.ipc, 1)
            .num(s.l2MissPct, 1)
            .num(s.dramUtilPct, 1);
    }
    ts.print(std::cout);

    // PKP stopping points across thresholds.
    common::TextTable st({"threshold s", "stop cycle", "speedup",
                          "proj. cycle error %", "stopped early"});
    for (double s : {2.5, 0.25, 0.025}) {
        core::PkpOptions po;
        po.threshold = s;
        core::IpcStabilityController ctl(po);
        sim::SimOptions so;
        so.stop = &ctl;
        auto r = simulator.simulateKernel(k, w.seed, so);
        auto proj = core::projectKernel(r);
        st.row()
            .num(s, 3)
            .intCell(static_cast<long long>(r.cycles))
            .num(static_cast<double>(full.cycles) /
                     static_cast<double>(r.cycles),
                 2)
            .num(common::pctError(
                     static_cast<double>(proj.projectedCycles),
                     static_cast<double>(full.cycles)),
                 2)
            .cell(r.stoppedEarly ? "yes" : "no");
    }
    st.print(std::cout);
}

} // namespace

int
main()
{
    bench::configureSharedEngineFromEnv();

    bench::banner("Figure 5: IPC stability and PKP stopping points");

    sim::GpuSimulator simulator(silicon::voltaV100());

    std::printf("\n--- (a) atax: a regular application ---\n");
    auto atax = workload::buildWorkload("atax");
    if (!atax) {
        std::fprintf(stderr, "atax missing\n");
        return 1;
    }
    traceKernel(simulator, *atax, 0);

    std::printf("\n--- (b) BFS: an irregular application ---\n");
    auto bfs = workload::buildWorkload("bfs1MW");
    if (!bfs) {
        std::fprintf(stderr, "bfs1MW missing\n");
        return 1;
    }
    // Three frontier kernels around the peak, as in the figure.
    for (uint32_t idx : {8u, 10u, 12u})
        traceKernel(simulator, *bfs, idx);
    return 0;
}
