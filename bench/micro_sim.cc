/**
 * @file
 * google-benchmark microbenchmarks for the execution substrates: the
 * cycle-level simulator's throughput (warp instructions per second), the
 * analytic silicon model, the detailed profiler, and the PKP stability
 * detector's per-bucket cost.
 */

#include <benchmark/benchmark.h>

#include "core/pkp.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/builder.hh"
#include "workload/suites.hh"

using namespace pka;

namespace
{

workload::KernelDescriptor
benchKernel(uint32_t ctas, uint32_t iters)
{
    using namespace workload;
    static ProgramPtr prog = ProgramBuilder("bench")
                                 .seg(InstrClass::GlobalLoad, 2)
                                 .seg(InstrClass::FpAlu, 12)
                                 .seg(InstrClass::IntAlu, 4)
                                 .seg(InstrClass::GlobalStore, 1)
                                 .mem(1.5, 0.6, 0.7)
                                 .build();
    KernelDescriptor k;
    k.program = prog;
    k.grid = {ctas, 1, 1};
    k.block = {256, 1, 1};
    k.iterations = iters;
    return k;
}

} // namespace

static void
BM_SimulatorThroughput(benchmark::State &state)
{
    sim::GpuSimulator simulator(silicon::voltaV100());
    auto k = benchKernel(static_cast<uint32_t>(state.range(0)), 8);
    uint64_t insts = 0;
    for (auto _ : state) {
        auto r = simulator.simulateKernel(k, 1);
        insts += r.warpInstructions;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    state.SetLabel("items = warp instructions");
}
BENCHMARK(BM_SimulatorThroughput)->Arg(80)->Arg(640)->Arg(2560)
    ->Unit(benchmark::kMillisecond);

static void
BM_SimulatorWithPkp(benchmark::State &state)
{
    sim::GpuSimulator simulator(silicon::voltaV100());
    auto k = benchKernel(2560, 16);
    core::IpcStabilityController stop;
    for (auto _ : state) {
        sim::SimOptions opts;
        opts.stop = &stop;
        auto r = simulator.simulateKernel(k, 1, opts);
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_SimulatorWithPkp)->Unit(benchmark::kMillisecond);

static void
BM_SiliconModel(benchmark::State &state)
{
    silicon::SiliconGpu gpu(silicon::voltaV100());
    auto k = benchKernel(2560, 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(gpu.execute(k, 1).cycles);
}
BENCHMARK(BM_SiliconModel);

static void
BM_DetailedProfileMlperfStream(benchmark::State &state)
{
    silicon::SiliconGpu gpu(silicon::voltaV100());
    workload::GenOptions g;
    g.mlperfScale = 0.005;
    auto w = workload::buildWorkload("ssd_training", g);
    silicon::DetailedProfiler prof(gpu);
    for (auto _ : state)
        benchmark::DoNotOptimize(prof.profile(*w, 2000).size());
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DetailedProfileMlperfStream)->Unit(benchmark::kMillisecond);

static void
BM_PkpDetector(benchmark::State &state)
{
    core::IpcStabilityController c;
    sim::StopController::Snapshot s;
    s.windowFull = true;
    s.windowIpcMean = 100;
    s.windowIpcStd = 40; // never stable: measures the polling cost
    s.totalCtas = 10000;
    s.finishedCtas = 100;
    s.waveSize = 2560;
    for (auto _ : state)
        benchmark::DoNotOptimize(c.shouldStop(s));
}
BENCHMARK(BM_PkpDetector);

BENCHMARK_MAIN();
