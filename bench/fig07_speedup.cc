/**
 * @file
 * Figure 7: simulation speedup of PKA, TBPoint and the first-1B-
 * instructions practice over full simulation, on the applications that
 * can complete in full simulation (the only ones TBPoint can run at all).
 * The paper reports geomeans of 3.77x (PKA), 1.76x (TBPoint) and 3.85x
 * (1B).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/experiments.hh"
#include "silicon/silicon_gpu.hh"
#include "workload/suites.hh"

using namespace pka;

int
main()
{
    bench::configureSharedEngineFromEnv();

    bench::banner("Figure 7: speedup over full simulation — PKA vs "
                  "TBPoint vs 1B instructions");

    auto spec = silicon::voltaV100();
    silicon::SiliconGpu gpu(spec);
    sim::GpuSimulator simulator(spec);

    common::TextTable t(
        {"workload", "PKA x", "TBPoint x", "1B x", "TBPoint groups"});
    std::vector<double> su_pka, su_tbp, su_1b;

    for (const auto &pair : core::buildAllPairs()) {
        const auto &w = pair.traced;
        if (!core::isFullySimulable(w))
            continue;
        core::PkaAppResult res =
            core::runPka(w, pair.profiled, gpu, simulator);
        if (res.excluded)
            continue;

        core::FullSimResult fs = core::fullSimulate(simulator, w);
        core::TBPointResult tbp = core::tbpointSelect(fs.perKernel);
        core::BaselineResult one_b = core::firstNInstructions(
            simulator, w, core::k1BEquivalentInstructions);

        double pka = res.pka.simulatedCycles > 0
                         ? fs.cycles / res.pka.simulatedCycles
                         : 1.0;
        double tb = tbp.representativeCycleCost > 0
                        ? fs.cycles / tbp.representativeCycleCost
                        : 1.0;
        double ob = one_b.simulatedCycles > 0
                        ? fs.cycles / one_b.simulatedCycles
                        : 1.0;
        su_pka.push_back(pka);
        su_tbp.push_back(tb);
        su_1b.push_back(ob);
        t.row()
            .cell(w.suite + "/" + w.name)
            .num(pka, 2)
            .num(tb, 2)
            .num(ob, 2)
            .intCell(static_cast<long long>(tbp.groups.size()));
    }
    t.print(std::cout);

    std::printf("\nGeoMean speedup over full simulation (%zu apps):\n",
                su_pka.size());
    std::printf("  PKA:     %.2fx (paper: 3.77x)\n",
                common::geomean(su_pka));
    std::printf("  TBPoint: %.2fx (paper: 1.76x)\n",
                common::geomean(su_tbp));
    std::printf("  1B:      %.2fx (paper: 3.85x)\n",
                common::geomean(su_1b));
    std::printf("  PKA-over-TBPoint simulation reduction: %.2fx "
                "(paper: 2.19x)\n",
                common::geomean(su_pka) / common::geomean(su_tbp));
    return 0;
}
