/**
 * @file
 * End-to-end chaos harness for the serve daemon: forks a real daemon
 * process per cycle and drives it with concurrent clients through
 * randomized-but-seeded kill/restart cycles, injected disk faults
 * (enospc/io/short writes at the store and journal) and abrupt
 * mid-FEED disconnects. Asserts the operational-resilience contract:
 *
 *  - zero daemon crashes — the only way a daemon dies is our SIGKILL
 *    or a clean exit after SIGTERM drain;
 *  - the cache directory survives every cycle: `fsck --repair` heals
 *    whatever the kills tore, and a rescan comes back clean;
 *  - the final resumed campaign produces aggregates bit-identical to a
 *    clean uninterrupted run (doubles travel as hexfloats on the wire,
 *    so string equality is bit equality).
 *
 * Usage: micro_chaos [--quick] [seed]   (default: 12 cycles, seed 1;
 *        --quick runs 5 cycles for CI)
 *
 * Emits BENCH_chaos.json and exits nonzero on any contract violation.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.hh"
#include "common/fault.hh"
#include "common/parse.hh"
#include "common/rng.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "store/fsck.hh"

using namespace pka;

namespace
{

int g_violations = 0;

void
check(bool ok, const char *what)
{
    if (ok)
        return;
    ++g_violations;
    std::fprintf(stderr, "VIOLATION: %s\n", what);
}

constexpr const char *kWorkload = "gauss_s64"; // 126 launches, 2 chunks
constexpr const char *kSession = "chaos";

/** Fault specs cycled through the daemon children (seeded pick). */
const char *const kFaultMenu[] = {
    "",                          // clean cycle
    "store.write:enospc:300",    // disk fills mid-campaign
    "store.read:io:150",         // flaky reads (transient misses)
    "journal.append:short:200",  // torn checkpoint tails
    "store.write:short:250",     // torn record writes
};

/**
 * Child body: become a daemon on `cacheDir`, report the bound address
 * over `wfd`, serve until SIGTERM (graceful drain) or SIGKILL. Never
 * returns.
 */
[[noreturn]] void
daemonChild(int wfd, const std::string &cacheDir,
            const std::string &faults, uint64_t faultSeed)
{
    if (!faults.empty() && common::kFaultInjectionCompiledIn) {
        std::string err;
        common::FaultInjector::instance().configureFromString(
            faults, faultSeed, &err);
    }

    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    serve::ServerOptions so;
    so.listen = "127.0.0.1:0";
    so.cacheDir = cacheDir;
    so.ioTimeoutSec = 5; // chaos clients vanish; deadlines must reap
    so.limits.maxConcurrentCampaigns = 2;
    auto started = serve::Server::start(so);
    if (!started.ok()) {
        std::string msg = "ERR " + started.error().str() + "\n";
        (void)!write(wfd, msg.c_str(), msg.size());
        _exit(2);
    }
    serve::Server *srv = started.value().get();
    std::string addr = srv->address() + "\n";
    (void)!write(wfd, addr.c_str(), addr.size());
    close(wfd);

    std::thread sig_thread([&sigs, srv] {
        int sig = 0;
        if (sigwait(&sigs, &sig) == 0) {
            if (sig == SIGTERM)
                srv->drain();
            else
                srv->shutdown();
        }
    });
    srv->wait();
    kill(getpid(), SIGTERM); // unblock sigwait on the verb path
    sig_thread.join();
    _exit(0);
}

/** What the concurrent clients saw during one cycle. */
struct ClientTallies
{
    int results = 0;     ///< RESULT replies (campaign completed)
    int typedErrs = 0;   ///< ERR replies (overloaded/quota/...)
    int transport = 0;   ///< connection died (expected under kills)
};

/** RUN a resumable campaign; outcomes land in `t`. */
void
runnerClient(const std::string &addr, unsigned priority, ClientTallies *t)
{
    auto c = serve::Client::connect(addr);
    if (!c.ok()) {
        ++t->transport;
        return;
    }
    auto h = c.value().hello(kSession, /*resume=*/true);
    if (!h.ok() || h.value().verb != "OK") {
        ++t->transport;
        return;
    }
    serve::Message req{"RUN", {}};
    req.add("id", "c").add("workload", kWorkload);
    req.addUint("priority", priority).add("resume", "1");
    auto r = c.value().call(req);
    if (!r.ok())
        ++t->transport;
    else if (r.value().verb == "RESULT")
        ++t->results;
    else
        ++t->typedErrs;
}

/** Open a stream, FEED a couple of chunks, then vanish mid-protocol —
 *  the abrupt-disconnect case the daemon must shrug off. */
void
streamerClient(const std::string &addr, ClientTallies *t)
{
    auto c = serve::Client::connect(addr);
    if (!c.ok()) {
        ++t->transport;
        return;
    }
    auto h = c.value().hello("chaos-stream");
    if (!h.ok() || h.value().verb != "OK") {
        ++t->transport;
        return;
    }
    serve::Message open{"STREAM", {}};
    open.add("id", "s").add("workload", kWorkload).addUint("warmup", 8);
    auto o = c.value().call(open);
    if (!o.ok() || o.value().verb != "OK") {
        o.ok() ? ++t->typedErrs : ++t->transport;
        return;
    }
    for (uint64_t from = 0; from < 16; from += 8) {
        serve::Message feed{"FEED", {}};
        feed.add("id", "s").addUint("from", from).addUint("count", 8);
        auto f = c.value().call(feed);
        if (!f.ok()) {
            ++t->transport;
            return;
        }
    }
    // Client object goes out of scope: the socket closes with the
    // stream open and launches fed but never ENDed.
}

/** One clean in-process daemon run; returns the RESULT message (empty
 *  verb on failure). `resume` continues `kSession`'s journaled work. */
serve::Message
cleanRun(const std::string &cacheDir, bool resume)
{
    serve::ServerOptions so;
    so.listen = "127.0.0.1:0";
    so.cacheDir = cacheDir;
    auto started = serve::Server::start(so);
    if (!started.ok())
        return serve::Message{"", {}};
    auto c = serve::Client::connect(started.value()->address());
    if (!c.ok())
        return serve::Message{"", {}};
    auto h = c.value().hello(kSession, resume);
    if (!h.ok() || h.value().verb != "OK")
        return serve::Message{"", {}};
    serve::Message req{"RUN", {}};
    req.add("id", "c").add("workload", kWorkload);
    if (resume)
        req.add("resume", "1");
    auto r = c.value().call(req);
    if (!r.ok())
        return serve::Message{"", {}};
    return r.value();
}

} // namespace

int
main(int argc, char **argv)
{
    int cycles = 12;
    uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            cycles = 5;
            continue;
        }
        auto v = common::parseUint(argv[i]);
        if (!v.ok()) {
            std::fprintf(stderr, "micro_chaos: bad seed '%s': %s\n",
                         argv[i], v.error().str().c_str());
            return 1;
        }
        seed = v.value();
    }

    namespace fs = std::filesystem;
    std::string root = "chaos_cache_dir";
    fs::remove_all(root);
    fs::create_directories(root);

    common::Rng rng(seed, 0xC4A05);
    ClientTallies tally;
    int kills = 0, drains = 0, crashes = 0, drainTimeouts = 0;

    bench::banner("seeded kill/restart + disk-fault + disconnect cycles");
    for (int cycle = 0; cycle < cycles; ++cycle) {
        const char *faults =
            kFaultMenu[rng.nextU32() %
                       (sizeof(kFaultMenu) / sizeof(kFaultMenu[0]))];
        bool graceful = cycle % 3 == 2; // every third cycle drains
        unsigned priority = rng.nextU32() % 2 == 0 ? 0 : 5;
        unsigned killDelayMs = 5 + rng.nextU32() % 250;

        int pipefd[2];
        if (pipe(pipefd) != 0) {
            std::perror("pipe");
            return 1;
        }
        pid_t pid = fork();
        if (pid < 0) {
            std::perror("fork");
            return 1;
        }
        if (pid == 0) {
            close(pipefd[0]);
            daemonChild(pipefd[1], root, faults, seed + cycle);
        }
        close(pipefd[1]);

        // The child reports its ephemeral address (or ERR) first thing.
        std::string addr;
        char ch;
        while (read(pipefd[0], &ch, 1) == 1 && ch != '\n')
            addr.push_back(ch);
        close(pipefd[0]);
        if (addr.rfind("ERR", 0) == 0 || addr.empty()) {
            check(false, "daemon child failed to start");
            waitpid(pid, nullptr, 0);
            continue;
        }

        std::thread runner(runnerClient, addr, priority, &tally);
        std::thread streamer(streamerClient, addr, &tally);
        std::thread prober(runnerClient, addr, 0u, &tally);

        std::this_thread::sleep_for(
            std::chrono::milliseconds(killDelayMs));
        kill(pid, graceful ? SIGTERM : SIGKILL);
        graceful ? ++drains : ++kills;

        runner.join();
        streamer.join();
        prober.join();

        // Reap with escalation: a drain that never finishes is itself a
        // violation (shutdown must terminate).
        int status = 0;
        bool reaped = false;
        for (int i = 0; i < 300; ++i) {
            if (waitpid(pid, &status, WNOHANG) == pid) {
                reaped = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        if (!reaped) {
            kill(pid, SIGKILL);
            waitpid(pid, &status, 0);
            ++drainTimeouts;
            check(false, "daemon did not exit within 30s of SIGTERM");
        } else if (WIFSIGNALED(status)) {
            if (WTERMSIG(status) != SIGKILL || graceful) {
                ++crashes;
                std::fprintf(stderr,
                             "cycle %d: daemon died on signal %d "
                             "(faults='%s', graceful=%d)\n",
                             cycle, WTERMSIG(status), faults, graceful);
            }
        } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
            ++crashes;
            std::fprintf(stderr, "cycle %d: daemon exited %d\n", cycle,
                         WEXITSTATUS(status));
        }
        std::printf("cycle %2d: faults='%s' %s after %ums  "
                    "[results %d, typed errs %d, transport %d]\n",
                    cycle, faults, graceful ? "SIGTERM" : "SIGKILL",
                    killDelayMs, tally.results, tally.typedErrs,
                    tally.transport);
    }
    check(crashes == 0, "daemon crashed under chaos");

    bench::banner("fsck repair + clean rescan");
    store::FsckOptions repair;
    repair.repair = true;
    store::FsckReport healed = store::fsckStore(root, repair);
    std::printf("fsck: %llu records (%llu corrupt, %llu misnamed), "
                "%llu sig, %llu tmp orphans, %llu journals "
                "(%llu torn), %llu quarantined\n",
                static_cast<unsigned long long>(healed.recordsScanned),
                static_cast<unsigned long long>(healed.recordsCorrupt),
                static_cast<unsigned long long>(healed.recordsMisnamed),
                static_cast<unsigned long long>(healed.sigScanned),
                static_cast<unsigned long long>(healed.tmpOrphans),
                static_cast<unsigned long long>(healed.journalsScanned),
                static_cast<unsigned long long>(healed.journalsTorn),
                static_cast<unsigned long long>(healed.quarantinedFiles));
    store::FsckReport rescan = store::fsckStore(root, store::FsckOptions{});
    check(rescan.clean(), "store not clean after fsck --repair");

    bench::banner("bit-identical final aggregates");
    std::string baseDir = root + "_baseline";
    fs::remove_all(baseDir);
    serve::Message base = cleanRun(baseDir, /*resume=*/false);
    serve::Message fin = cleanRun(root, /*resume=*/true);
    check(base.verb == "RESULT", "baseline campaign did not complete");
    check(fin.verb == "RESULT", "final resumed campaign did not complete");
    bool identical = base.verb == "RESULT" && fin.verb == "RESULT";
    for (const char *key : {"cycles", "insts", "ipc", "dram"}) {
        if (!identical)
            break;
        if (base.get(key) != fin.get(key)) {
            identical = false;
            std::fprintf(stderr, "aggregate '%s' diverged: %s != %s\n",
                         key, base.get(key).c_str(),
                         fin.get(key).c_str());
        }
    }
    check(identical,
          "final aggregates not bit-identical to a clean run");
    std::printf("final: cycles=%s (resumed %s launches) vs clean "
                "cycles=%s -> %s\n",
                fin.get("cycles").c_str(), fin.get("resumed").c_str(),
                base.get("cycles").c_str(),
                identical ? "identical" : "DIVERGED");

    FILE *json = std::fopen("BENCH_chaos.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"seed\": %llu,\n  \"cycles\": %d,\n"
            "  \"kills\": %d,\n  \"drains\": %d,\n"
            "  \"crashes\": %d,\n  \"drain_timeouts\": %d,\n"
            "  \"client_results\": %d,\n  \"client_typed_errs\": %d,\n"
            "  \"client_transport_errs\": %d,\n"
            "  \"fsck_quarantined\": %llu,\n"
            "  \"fsck_journals_torn\": %llu,\n"
            "  \"bit_identical\": %s,\n  \"violations\": %d\n}\n",
            static_cast<unsigned long long>(seed), cycles, kills, drains,
            crashes, drainTimeouts, tally.results, tally.typedErrs,
            tally.transport,
            static_cast<unsigned long long>(healed.quarantinedFiles),
            static_cast<unsigned long long>(healed.journalsTorn),
            identical ? "true" : "false", g_violations);
        std::fclose(json);
        std::printf("wrote BENCH_chaos.json\n");
    }

    fs::remove_all(root);
    fs::remove_all(baseDir);
    if (g_violations > 0) {
        std::fprintf(stderr, "micro_chaos: %d contract violation(s)\n",
                     g_violations);
        return 1;
    }
    std::printf("micro_chaos: all resilience contracts held\n");
    return 0;
}
