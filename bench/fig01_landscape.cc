/**
 * @file
 * Figure 1: the runtime landscape across all 147 workloads — silicon
 * execution time, time to collect the 12 Table-2 statistics with a
 * detailed silicon profiler, and projected time to simulate at
 * Accel-Sim-like rates. All values are full-size equivalents (scaled
 * workloads are divided by their generation scale), on a log-time axis in
 * the paper; here each series prints sorted plus banded counts.
 */

#include <cinttypes>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/experiments.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "workload/suites.hh"

using namespace pka;

int
main()
{
    bench::configureSharedEngineFromEnv();

    bench::banner("Figure 1: silicon vs profiler vs projected simulation "
                  "time (147 workloads, V100)");

    silicon::SiliconGpu gpu(silicon::voltaV100());
    silicon::DetailedProfiler detailed(gpu);

    struct Row
    {
        std::string name;
        double silicon_s, profiler_s, sim_s;
    };
    std::vector<Row> rows;

    for (const auto &w : workload::allWorkloads()) {
        double inv_scale = w.scale > 0 ? 1.0 / w.scale : 1.0;
        auto app = gpu.run(w);
        Row r;
        r.name = w.suite + "/" + w.name;
        r.silicon_s = app.totalSeconds * inv_scale;
        r.profiler_s = detailed.costSeconds(w) * inv_scale;
        r.sim_s = static_cast<double>(app.totalCycles) * inv_scale /
                  core::kSimCyclesPerSecond;
        rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.silicon_s < b.silicon_s;
    });

    common::TextTable t({"workload", "silicon", "profiler(12 stats)",
                         "projected simulation"});
    for (const auto &r : rows)
        t.row()
            .cell(r.name)
            .cell(common::humanTime(r.silicon_s))
            .cell(common::humanTime(r.profiler_s))
            .cell(common::humanTime(r.sim_s));
    t.print(std::cout);

    // Banded counts, mirroring the figure's vertical spread.
    auto band = [](const std::vector<Row> &rs, auto sel) {
        struct Band { const char *label; double lo, hi; };
        static const Band bands[] = {
            {"  < 1 ms", 0, 1e-3},
            {"  1 ms - 1 s", 1e-3, 1.0},
            {"  1 s - 1 h", 1.0, 3600.0},
            {"  1 h - 1 week", 3600.0, 604800.0},
            {"  1 week - 1 year", 604800.0, 3.15e7},
            {"  1 year - 1 century", 3.15e7, 3.15e9},
            {"  > 1 century", 3.15e9, 1e300},
        };
        for (const auto &b : bands) {
            int n = 0;
            for (const auto &r : rs) {
                double v = sel(r);
                n += v >= b.lo && v < b.hi;
            }
            if (n > 0)
                std::printf("%-22s %3d workloads\n", b.label, n);
        }
    };
    std::printf("\nSilicon execution time bands:\n");
    band(rows, [](const Row &r) { return r.silicon_s; });
    std::printf("\nDetailed-profiling time bands:\n");
    band(rows, [](const Row &r) { return r.profiler_s; });
    std::printf("\nProjected simulation time bands:\n");
    band(rows, [](const Row &r) { return r.sim_s; });
    return 0;
}
