/**
 * @file
 * Campaign-engine microbenchmark: serial-vs-parallel wall-clock speedup
 * with bit-identical aggregate verification, and memoization hit rate on
 * an MLPerf-style repetitive stream. Emits JSON so CI can assert the
 * acceptance criteria (speedup on multi-core hosts, hit rate >= 90%,
 * aggregates identical across thread counts and cache on/off).
 *
 * The campaign sweep runs with memoization OFF so the speedup measures
 * the thread pool, not the cache. The cache run seeds from launch
 * content (EngineOptions::contentSeed) so identical launches are
 * bit-identical and cache hits are semantically honest.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/experiments.hh"
#include "silicon/gpu_spec.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

using namespace pka;

namespace
{

/** Aggregates that must be bit-identical for every engine config. */
struct CampaignAggregate
{
    double cycles = 0.0;
    double threadInsts = 0.0;
    double dramUtilPct = 0.0;

    bool operator==(const CampaignAggregate &) const = default;
};

struct ConfigRun
{
    unsigned threads = 0;
    double wallSeconds = 0.0;
    double cpuSeconds = 0.0;
    uint64_t faulted = 0; ///< failed + quarantined (must be 0: clean path)
    CampaignAggregate agg;
};

ConfigRun
runCampaign(const std::vector<workload::Workload> &apps,
            const sim::GpuSimulator &simulator, unsigned threads)
{
    sim::EngineOptions eo;
    eo.threads = threads;
    eo.memoize = false; // measure the pool, not the cache
    sim::SimEngine engine(eo);

    ConfigRun run;
    run.threads = threads;
    for (const auto &w : apps) {
        core::FullSimResult fs = core::fullSimulate(engine, simulator, w);
        run.wallSeconds += fs.wallSeconds;
        run.cpuSeconds += fs.cpuSeconds;
        run.faulted += fs.failedLaunches + fs.quarantinedKernels;
        run.agg.cycles += fs.cycles;
        run.agg.threadInsts += fs.threadInsts;
        run.agg.dramUtilPct += fs.dramUtilPct;
    }
    return run;
}

} // namespace

int
main()
{
    sim::GpuSimulator simulator(silicon::voltaV100());

    // Multi-app campaign: enough independent launches to keep every
    // worker busy, small enough to sweep four thread counts.
    const std::vector<std::string> names = {"srad_v2", "stencil",
                                            "scluster", "fdtd2d", "lud_i"};
    std::vector<workload::Workload> apps;
    size_t campaign_launches = 0;
    for (const auto &n : names) {
        auto w = workload::buildWorkload(n);
        PKA_ASSERT(w.has_value(), "campaign workload missing");
        campaign_launches += w->launches.size();
        apps.push_back(std::move(*w));
    }

    std::vector<ConfigRun> runs;
    for (unsigned t : {1u, 2u, 4u, 8u})
        runs.push_back(runCampaign(apps, simulator, t));

    bool campaign_identical = true;
    for (const auto &r : runs)
        campaign_identical = campaign_identical && r.agg == runs[0].agg;
    double speedup = runs.back().wallSeconds > 0
                         ? runs.front().wallSeconds / runs.back().wallSeconds
                         : 0.0;

    // MLPerf-style stream: a few distinct kernel configs repeated for
    // thousands of launches — the regime where memoization pays.
    workload::GenOptions g;
    g.mlperfScale = 0.0002;
    auto stream = workload::buildWorkload("gnmt_training", g);
    PKA_ASSERT(stream.has_value(), "mlperf stream missing");

    sim::EngineOptions cache_on;
    cache_on.contentSeed = true;
    sim::EngineOptions cache_off = cache_on;
    cache_off.memoize = false;

    sim::SimEngine engine_on(cache_on);
    sim::SimEngine engine_off(cache_off);
    core::FullSimResult on =
        core::fullSimulate(engine_on, simulator, *stream);
    core::FullSimResult off =
        core::fullSimulate(engine_off, simulator, *stream);
    bool cache_identical = on.cycles == off.cycles &&
                           on.threadInsts == off.threadInsts &&
                           on.dramUtilPct == off.dramUtilPct;
    double hit_rate =
        on.cacheHits + on.cacheMisses > 0
            ? 100.0 * static_cast<double>(on.cacheHits) /
                  static_cast<double>(on.cacheHits + on.cacheMisses)
            : 0.0;

    std::printf("{\n  \"campaign\": {\n");
    std::printf("    \"workloads\": [");
    for (size_t i = 0; i < names.size(); ++i)
        std::printf("%s\"%s\"", i ? ", " : "", names[i].c_str());
    std::printf("],\n");
    std::printf("    \"launches\": %zu,\n", campaign_launches);
    std::printf("    \"configs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::printf("      {\"threads\": %u, \"wall_seconds\": %.4f, "
                    "\"cpu_seconds\": %.4f, \"cycles\": %.17g}%s\n",
                    r.threads, r.wallSeconds, r.cpuSeconds, r.agg.cycles,
                    i + 1 < runs.size() ? "," : "");
    }
    std::printf("    ],\n");
    std::printf("    \"speedup_8_vs_1\": %.3f,\n", speedup);
    std::printf("    \"aggregates_bit_identical\": %s\n",
                campaign_identical ? "true" : "false");
    std::printf("  },\n");
    std::printf("  \"cache\": {\n");
    std::printf("    \"workload\": \"gnmt_training\",\n");
    std::printf("    \"launches\": %zu,\n", stream->launches.size());
    std::printf("    \"hits\": %llu,\n",
                static_cast<unsigned long long>(on.cacheHits));
    std::printf("    \"misses\": %llu,\n",
                static_cast<unsigned long long>(on.cacheMisses));
    std::printf("    \"hit_rate_pct\": %.2f,\n", hit_rate);
    std::printf("    \"wall_seconds_cache_on\": %.4f,\n", on.wallSeconds);
    std::printf("    \"wall_seconds_cache_off\": %.4f,\n", off.wallSeconds);
    std::printf("    \"cycles\": %.17g,\n", on.cycles);
    std::printf("    \"aggregates_bit_identical\": %s\n",
                cache_identical ? "true" : "false");

    // Clean-path smoke for the fault-tolerance machinery: with no fault
    // injection armed, nothing may retry, fail or be quarantined.
    uint64_t faulted = on.failedLaunches + on.quarantinedKernels +
                       off.failedLaunches + off.quarantinedKernels;
    for (const auto &r : runs)
        faulted += r.faulted;
    std::printf("  },\n");
    std::printf("  \"clean_path\": {\n");
    std::printf("    \"faulted_or_quarantined\": %llu\n",
                static_cast<unsigned long long>(faulted));
    std::printf("  }\n}\n");

    return (campaign_identical && cache_identical && faulted == 0) ? 0 : 1;
}
