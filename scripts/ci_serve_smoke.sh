#!/usr/bin/env bash
# Smoke test for the `pka serve` daemon, exercised the way CI runs it
# (including ASan/UBSan builds):
#
#   1. concurrency — one daemon, >= 2 script clients running campaigns
#      at the same time; every client's "full simulation:" line must
#      match the batch CLI on the same workload bit for bit (the line
#      is printed from the same doubles on both paths, so any wire or
#      scheduling nondeterminism shows up as a diff);
#   2. admission control — a daemon with a small launch quota turns an
#      oversized campaign into a typed rejection (client exit 5), never
#      a crash, and leaves the journal behind;
#   3. session resume — a fresh daemon on the same cache dir resumes
#      the rejected campaign by session key and finishes with output
#      bit-identical to an uninterrupted batch run;
#   4. shadow audit — a daemon with the similarity tier and
#      --audit-rate 1.0 must actually sample audits while serving a
#      projecting campaign, and the client's --stats audit counters
#      must reflect that (sampled > 0, and every sampled audit is
#      accounted for as run or shed).
#
# Usage: scripts/ci_serve_smoke.sh [path-to-pka]

set -euo pipefail

PKA=${1:-${PKA:-./build/tools/pka}}
WORKLOADS=(bfs4096 gauss_s64)
RESUME_WORKLOAD=gauss_s64
WORK=$(mktemp -d)
SERVER_PID=

# Runs on every exit path — a failed assertion (or a ^C) must never
# leave an orphaned daemon behind. SIGTERM asks for a graceful drain;
# a daemon that does not quiesce promptly is hard-killed.
cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -TERM "$SERVER_PID" 2>/dev/null || true
        for _ in $(seq 1 50); do
            kill -0 "$SERVER_PID" 2>/dev/null || break
            sleep 0.1
        done
        kill -KILL "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Starts a daemon, waits for its readiness line and sets ADDR/SERVER_PID.
start_daemon() {
    local out="$1"
    shift
    "$PKA" serve --listen 127.0.0.1:0 "$@" >"$out" 2>"$out.err" &
    SERVER_PID=$!
    ADDR=
    for _ in $(seq 1 200); do
        ADDR=$(sed -n 's/^pka serve: listening on //p' "$out")
        [ -n "$ADDR" ] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null ||
            fail "daemon died at startup: $(cat "$out.err")"
        sleep 0.05
    done
    fail "daemon never printed its readiness line"
}

stop_daemon() {
    "$PKA" client --connect "$ADDR" --shutdown >/dev/null
    wait "$SERVER_PID" || true
    SERVER_PID=
}

# The deterministic prefix of the result line: aggregates + launch
# count. Cache/store/miss counters legitimately differ between a warm
# daemon and a cold batch run, so they are cut off.
sim_prefix() {
    sed -n 's/^\(full simulation: .* launches\),.*/\1/p' "$1"
}

echo "== phase 1: >= ${#WORKLOADS[@]} concurrent clients vs batch CLI"
start_daemon "$WORK/serve1.out" --cache-dir "$WORK/serve-cache" --threads 2

pids=()
for w in "${WORKLOADS[@]}"; do
    "$PKA" client --connect "$ADDR" "$w" --session "smoke-$w" \
        >"$WORK/client-$w.out" 2>&1 &
    pids+=($!)
done
for p in "${pids[@]}"; do
    wait "$p" || fail "concurrent client exited non-zero"
done

for w in "${WORKLOADS[@]}"; do
    "$PKA" simulate "$w" >"$WORK/batch-$w.out" 2>/dev/null ||
        fail "batch simulate $w failed"
    daemon_line=$(sim_prefix "$WORK/client-$w.out")
    batch_line=$(sim_prefix "$WORK/batch-$w.out")
    [ -n "$daemon_line" ] || fail "no result line from the $w client"
    [ "$daemon_line" = "$batch_line" ] ||
        fail "$w daemon/batch mismatch: '$daemon_line' vs '$batch_line'"
    echo "   $w: daemon == batch ($daemon_line)"
done
stop_daemon

echo "== phase 2: launch quota -> typed rejection (exit 5)"
start_daemon "$WORK/serve2.out" --cache-dir "$WORK/resume-cache" \
    --threads 2 --launch-quota 64
set +e
"$PKA" client --connect "$ADDR" "$RESUME_WORKLOAD" --session smoke-resume \
    >"$WORK/rejected.out" 2>&1
rc=$?
set -e
[ "$rc" -eq 5 ] || fail "expected quota rejection exit 5, got $rc"
grep -q "quota" "$WORK/rejected.out" ||
    fail "rejection output does not mention the quota"
echo "   rejected as expected: $(grep -m1 quota "$WORK/rejected.out")"
stop_daemon

echo "== phase 3: resume by session key, bit-identical to batch"
start_daemon "$WORK/serve3.out" --cache-dir "$WORK/resume-cache" --threads 2
"$PKA" client --connect "$ADDR" "$RESUME_WORKLOAD" --session smoke-resume \
    --resume >"$WORK/resumed.out" 2>&1 ||
    fail "resumed client exited non-zero: $(cat "$WORK/resumed.out")"
grep -q "^resumed:" "$WORK/resumed.out" ||
    fail "resumed run did not report journal credit"
resumed_line=$(sim_prefix "$WORK/resumed.out")
batch_line=$(sim_prefix "$WORK/batch-$RESUME_WORKLOAD.out")
[ "$resumed_line" = "$batch_line" ] ||
    fail "resume mismatch: '$resumed_line' vs '$batch_line'"
echo "   $(grep -m1 '^resumed:' "$WORK/resumed.out")"
echo "   resumed == batch ($resumed_line)"
stop_daemon

echo "== phase 4: shadow audit counters over the daemon stats channel"
start_daemon "$WORK/serve4.out" --cache-dir "$WORK/audit-cache" \
    --threads 2 --xcache --xcache-tolerance 0.05 --audit-rate 1.0
"$PKA" client --connect "$ADDR" "$RESUME_WORKLOAD" --session smoke-audit \
    >"$WORK/audited.out" 2>&1 ||
    fail "audited client exited non-zero: $(cat "$WORK/audited.out")"
"$PKA" client --connect "$ADDR" --stats >"$WORK/audit-stats.out" 2>&1 ||
    fail "stats query failed: $(cat "$WORK/audit-stats.out")"
audit_line=$(grep -m1 '^audit:' "$WORK/audit-stats.out") ||
    fail "no audit line in --stats output: $(cat "$WORK/audit-stats.out")"
read -r sampled run shed <<EOF
$(echo "$audit_line" |
    sed -n 's/^audit: *\([0-9]*\) sampled \/ \([0-9]*\) run \/ \([0-9]*\) shed.*/\1 \2 \3/p')
EOF
[ -n "${sampled:-}" ] || fail "unparseable audit line: '$audit_line'"
[ "$sampled" -gt 0 ] ||
    fail "audit-rate 1.0 daemon sampled no audits: '$audit_line'"
[ $((run + shed)) -le "$sampled" ] ||
    fail "audit accounting broken (run+shed > sampled): '$audit_line'"
echo "   $audit_line"
stop_daemon

echo "PASS: serve smoke (concurrency, admission, resume, audit) all green"
