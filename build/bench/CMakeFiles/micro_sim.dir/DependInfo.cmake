
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_sim.cc" "bench/CMakeFiles/micro_sim.dir/micro_sim.cc.o" "gcc" "bench/CMakeFiles/micro_sim.dir/micro_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pka_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pka_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pka_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/silicon/CMakeFiles/pka_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pka_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
