file(REMOVE_RECURSE
  "CMakeFiles/fig04_resnet_groups.dir/fig04_resnet_groups.cc.o"
  "CMakeFiles/fig04_resnet_groups.dir/fig04_resnet_groups.cc.o.d"
  "fig04_resnet_groups"
  "fig04_resnet_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_resnet_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
