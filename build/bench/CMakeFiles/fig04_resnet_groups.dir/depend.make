# Empty dependencies file for fig04_resnet_groups.
# This may be replaced when dependencies are built.
