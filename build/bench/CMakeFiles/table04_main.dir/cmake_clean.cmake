file(REMOVE_RECURSE
  "CMakeFiles/table04_main.dir/table04_main.cc.o"
  "CMakeFiles/table04_main.dir/table04_main.cc.o.d"
  "table04_main"
  "table04_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
