# Empty dependencies file for table04_main.
# This may be replaced when dependencies are built.
