file(REMOVE_RECURSE
  "CMakeFiles/table03_selection.dir/table03_selection.cc.o"
  "CMakeFiles/table03_selection.dir/table03_selection.cc.o.d"
  "table03_selection"
  "table03_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
