# Empty compiler generated dependencies file for table03_selection.
# This may be replaced when dependencies are built.
