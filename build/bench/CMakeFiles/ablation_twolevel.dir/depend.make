# Empty dependencies file for ablation_twolevel.
# This may be replaced when dependencies are built.
