file(REMOVE_RECURSE
  "CMakeFiles/ablation_twolevel.dir/ablation_twolevel.cc.o"
  "CMakeFiles/ablation_twolevel.dir/ablation_twolevel.cc.o.d"
  "ablation_twolevel"
  "ablation_twolevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twolevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
