file(REMOVE_RECURSE
  "CMakeFiles/fig09_volta_turing.dir/fig09_volta_turing.cc.o"
  "CMakeFiles/fig09_volta_turing.dir/fig09_volta_turing.cc.o.d"
  "fig09_volta_turing"
  "fig09_volta_turing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_volta_turing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
