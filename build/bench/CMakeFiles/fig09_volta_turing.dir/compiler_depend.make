# Empty compiler generated dependencies file for fig09_volta_turing.
# This may be replaced when dependencies are built.
