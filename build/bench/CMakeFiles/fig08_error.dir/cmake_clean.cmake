file(REMOVE_RECURSE
  "CMakeFiles/fig08_error.dir/fig08_error.cc.o"
  "CMakeFiles/fig08_error.dir/fig08_error.cc.o.d"
  "fig08_error"
  "fig08_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
