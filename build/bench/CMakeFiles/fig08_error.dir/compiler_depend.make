# Empty compiler generated dependencies file for fig08_error.
# This may be replaced when dependencies are built.
