file(REMOVE_RECURSE
  "CMakeFiles/fig06_simtime.dir/fig06_simtime.cc.o"
  "CMakeFiles/fig06_simtime.dir/fig06_simtime.cc.o.d"
  "fig06_simtime"
  "fig06_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
