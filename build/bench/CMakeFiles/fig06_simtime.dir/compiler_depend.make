# Empty compiler generated dependencies file for fig06_simtime.
# This may be replaced when dependencies are built.
