file(REMOVE_RECURSE
  "CMakeFiles/ablation_pkp.dir/ablation_pkp.cc.o"
  "CMakeFiles/ablation_pkp.dir/ablation_pkp.cc.o.d"
  "ablation_pkp"
  "ablation_pkp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
