# Empty dependencies file for ablation_pkp.
# This may be replaced when dependencies are built.
