file(REMOVE_RECURSE
  "CMakeFiles/table05_single_iteration.dir/table05_single_iteration.cc.o"
  "CMakeFiles/table05_single_iteration.dir/table05_single_iteration.cc.o.d"
  "table05_single_iteration"
  "table05_single_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_single_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
