# Empty compiler generated dependencies file for table05_single_iteration.
# This may be replaced when dependencies are built.
