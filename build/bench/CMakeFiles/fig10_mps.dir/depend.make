# Empty dependencies file for fig10_mps.
# This may be replaced when dependencies are built.
