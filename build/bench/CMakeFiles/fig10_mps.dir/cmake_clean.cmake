file(REMOVE_RECURSE
  "CMakeFiles/fig10_mps.dir/fig10_mps.cc.o"
  "CMakeFiles/fig10_mps.dir/fig10_mps.cc.o.d"
  "fig10_mps"
  "fig10_mps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
