file(REMOVE_RECURSE
  "CMakeFiles/fig05_ipc_stability.dir/fig05_ipc_stability.cc.o"
  "CMakeFiles/fig05_ipc_stability.dir/fig05_ipc_stability.cc.o.d"
  "fig05_ipc_stability"
  "fig05_ipc_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ipc_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
