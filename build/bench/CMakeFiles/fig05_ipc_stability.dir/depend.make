# Empty dependencies file for fig05_ipc_stability.
# This may be replaced when dependencies are built.
