file(REMOVE_RECURSE
  "CMakeFiles/ablation_representative.dir/ablation_representative.cc.o"
  "CMakeFiles/ablation_representative.dir/ablation_representative.cc.o.d"
  "ablation_representative"
  "ablation_representative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_representative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
