# Empty dependencies file for ablation_representative.
# This may be replaced when dependencies are built.
