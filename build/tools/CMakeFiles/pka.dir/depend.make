# Empty dependencies file for pka.
# This may be replaced when dependencies are built.
