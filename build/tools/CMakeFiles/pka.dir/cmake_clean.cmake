file(REMOVE_RECURSE
  "CMakeFiles/pka.dir/pka_cli.cc.o"
  "CMakeFiles/pka.dir/pka_cli.cc.o.d"
  "pka"
  "pka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
