file(REMOVE_RECURSE
  "CMakeFiles/example_arch_comparison.dir/arch_comparison.cpp.o"
  "CMakeFiles/example_arch_comparison.dir/arch_comparison.cpp.o.d"
  "example_arch_comparison"
  "example_arch_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_arch_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
