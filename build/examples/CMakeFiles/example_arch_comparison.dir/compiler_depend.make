# Empty compiler generated dependencies file for example_arch_comparison.
# This may be replaced when dependencies are built.
