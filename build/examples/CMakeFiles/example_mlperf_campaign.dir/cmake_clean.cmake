file(REMOVE_RECURSE
  "CMakeFiles/example_mlperf_campaign.dir/mlperf_campaign.cpp.o"
  "CMakeFiles/example_mlperf_campaign.dir/mlperf_campaign.cpp.o.d"
  "example_mlperf_campaign"
  "example_mlperf_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mlperf_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
