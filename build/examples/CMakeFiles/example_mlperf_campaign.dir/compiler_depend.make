# Empty compiler generated dependencies file for example_mlperf_campaign.
# This may be replaced when dependencies are built.
