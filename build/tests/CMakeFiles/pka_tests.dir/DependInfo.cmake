
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/pka_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/pka_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/pka_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_ml.cc" "tests/CMakeFiles/pka_tests.dir/test_ml.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_ml.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/pka_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_silicon.cc" "tests/CMakeFiles/pka_tests.dir/test_silicon.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_silicon.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/pka_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/pka_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_tools.cc" "tests/CMakeFiles/pka_tests.dir/test_tools.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_tools.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/pka_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/pka_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pka_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pka_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pka_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/silicon/CMakeFiles/pka_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pka_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
