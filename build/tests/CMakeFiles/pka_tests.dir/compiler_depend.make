# Empty compiler generated dependencies file for pka_tests.
# This may be replaced when dependencies are built.
