file(REMOVE_RECURSE
  "CMakeFiles/pka_tests.dir/test_common.cc.o"
  "CMakeFiles/pka_tests.dir/test_common.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_core.cc.o"
  "CMakeFiles/pka_tests.dir/test_core.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_integration.cc.o"
  "CMakeFiles/pka_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_ml.cc.o"
  "CMakeFiles/pka_tests.dir/test_ml.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_properties.cc.o"
  "CMakeFiles/pka_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_silicon.cc.o"
  "CMakeFiles/pka_tests.dir/test_silicon.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_sim.cc.o"
  "CMakeFiles/pka_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_smoke.cc.o"
  "CMakeFiles/pka_tests.dir/test_smoke.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_tools.cc.o"
  "CMakeFiles/pka_tests.dir/test_tools.cc.o.d"
  "CMakeFiles/pka_tests.dir/test_workload.cc.o"
  "CMakeFiles/pka_tests.dir/test_workload.cc.o.d"
  "pka_tests"
  "pka_tests.pdb"
  "pka_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
