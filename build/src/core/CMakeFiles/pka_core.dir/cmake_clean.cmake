file(REMOVE_RECURSE
  "CMakeFiles/pka_core.dir/baselines.cc.o"
  "CMakeFiles/pka_core.dir/baselines.cc.o.d"
  "CMakeFiles/pka_core.dir/experiments.cc.o"
  "CMakeFiles/pka_core.dir/experiments.cc.o.d"
  "CMakeFiles/pka_core.dir/features.cc.o"
  "CMakeFiles/pka_core.dir/features.cc.o.d"
  "CMakeFiles/pka_core.dir/pka.cc.o"
  "CMakeFiles/pka_core.dir/pka.cc.o.d"
  "CMakeFiles/pka_core.dir/pkp.cc.o"
  "CMakeFiles/pka_core.dir/pkp.cc.o.d"
  "CMakeFiles/pka_core.dir/pks.cc.o"
  "CMakeFiles/pka_core.dir/pks.cc.o.d"
  "CMakeFiles/pka_core.dir/serialize.cc.o"
  "CMakeFiles/pka_core.dir/serialize.cc.o.d"
  "CMakeFiles/pka_core.dir/two_level.cc.o"
  "CMakeFiles/pka_core.dir/two_level.cc.o.d"
  "libpka_core.a"
  "libpka_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
