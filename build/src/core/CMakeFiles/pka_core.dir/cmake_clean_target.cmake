file(REMOVE_RECURSE
  "libpka_core.a"
)
