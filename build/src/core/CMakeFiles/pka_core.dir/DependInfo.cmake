
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/pka_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/core/CMakeFiles/pka_core.dir/experiments.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/experiments.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/pka_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/features.cc.o.d"
  "/root/repo/src/core/pka.cc" "src/core/CMakeFiles/pka_core.dir/pka.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/pka.cc.o.d"
  "/root/repo/src/core/pkp.cc" "src/core/CMakeFiles/pka_core.dir/pkp.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/pkp.cc.o.d"
  "/root/repo/src/core/pks.cc" "src/core/CMakeFiles/pka_core.dir/pks.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/pks.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/pka_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/two_level.cc" "src/core/CMakeFiles/pka_core.dir/two_level.cc.o" "gcc" "src/core/CMakeFiles/pka_core.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/pka_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pka_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/silicon/CMakeFiles/pka_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pka_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
