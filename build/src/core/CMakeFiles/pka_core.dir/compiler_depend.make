# Empty compiler generated dependencies file for pka_core.
# This may be replaced when dependencies are built.
