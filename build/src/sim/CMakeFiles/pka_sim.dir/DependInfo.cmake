
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ipc_tracker.cc" "src/sim/CMakeFiles/pka_sim.dir/ipc_tracker.cc.o" "gcc" "src/sim/CMakeFiles/pka_sim.dir/ipc_tracker.cc.o.d"
  "/root/repo/src/sim/memory_model.cc" "src/sim/CMakeFiles/pka_sim.dir/memory_model.cc.o" "gcc" "src/sim/CMakeFiles/pka_sim.dir/memory_model.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/pka_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/pka_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/sm_core.cc" "src/sim/CMakeFiles/pka_sim.dir/sm_core.cc.o" "gcc" "src/sim/CMakeFiles/pka_sim.dir/sm_core.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/pka_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/pka_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/silicon/CMakeFiles/pka_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pka_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
