file(REMOVE_RECURSE
  "libpka_sim.a"
)
