# Empty dependencies file for pka_sim.
# This may be replaced when dependencies are built.
