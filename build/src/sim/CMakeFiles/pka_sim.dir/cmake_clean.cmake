file(REMOVE_RECURSE
  "CMakeFiles/pka_sim.dir/ipc_tracker.cc.o"
  "CMakeFiles/pka_sim.dir/ipc_tracker.cc.o.d"
  "CMakeFiles/pka_sim.dir/memory_model.cc.o"
  "CMakeFiles/pka_sim.dir/memory_model.cc.o.d"
  "CMakeFiles/pka_sim.dir/simulator.cc.o"
  "CMakeFiles/pka_sim.dir/simulator.cc.o.d"
  "CMakeFiles/pka_sim.dir/sm_core.cc.o"
  "CMakeFiles/pka_sim.dir/sm_core.cc.o.d"
  "CMakeFiles/pka_sim.dir/trace.cc.o"
  "CMakeFiles/pka_sim.dir/trace.cc.o.d"
  "libpka_sim.a"
  "libpka_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
