# Empty dependencies file for pka_common.
# This may be replaced when dependencies are built.
