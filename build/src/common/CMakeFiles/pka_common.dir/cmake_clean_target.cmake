file(REMOVE_RECURSE
  "libpka_common.a"
)
