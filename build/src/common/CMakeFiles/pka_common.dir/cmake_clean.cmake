file(REMOVE_RECURSE
  "CMakeFiles/pka_common.dir/logging.cc.o"
  "CMakeFiles/pka_common.dir/logging.cc.o.d"
  "CMakeFiles/pka_common.dir/stats.cc.o"
  "CMakeFiles/pka_common.dir/stats.cc.o.d"
  "CMakeFiles/pka_common.dir/table.cc.o"
  "CMakeFiles/pka_common.dir/table.cc.o.d"
  "libpka_common.a"
  "libpka_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
