file(REMOVE_RECURSE
  "libpka_silicon.a"
)
