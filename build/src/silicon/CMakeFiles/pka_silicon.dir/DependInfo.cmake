
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/silicon/gpu_spec.cc" "src/silicon/CMakeFiles/pka_silicon.dir/gpu_spec.cc.o" "gcc" "src/silicon/CMakeFiles/pka_silicon.dir/gpu_spec.cc.o.d"
  "/root/repo/src/silicon/profiler.cc" "src/silicon/CMakeFiles/pka_silicon.dir/profiler.cc.o" "gcc" "src/silicon/CMakeFiles/pka_silicon.dir/profiler.cc.o.d"
  "/root/repo/src/silicon/silicon_gpu.cc" "src/silicon/CMakeFiles/pka_silicon.dir/silicon_gpu.cc.o" "gcc" "src/silicon/CMakeFiles/pka_silicon.dir/silicon_gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pka_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
