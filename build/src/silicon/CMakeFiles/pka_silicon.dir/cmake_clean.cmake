file(REMOVE_RECURSE
  "CMakeFiles/pka_silicon.dir/gpu_spec.cc.o"
  "CMakeFiles/pka_silicon.dir/gpu_spec.cc.o.d"
  "CMakeFiles/pka_silicon.dir/profiler.cc.o"
  "CMakeFiles/pka_silicon.dir/profiler.cc.o.d"
  "CMakeFiles/pka_silicon.dir/silicon_gpu.cc.o"
  "CMakeFiles/pka_silicon.dir/silicon_gpu.cc.o.d"
  "libpka_silicon.a"
  "libpka_silicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_silicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
