# Empty compiler generated dependencies file for pka_silicon.
# This may be replaced when dependencies are built.
