# Empty compiler generated dependencies file for pka_workload.
# This may be replaced when dependencies are built.
