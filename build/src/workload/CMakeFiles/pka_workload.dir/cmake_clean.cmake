file(REMOVE_RECURSE
  "CMakeFiles/pka_workload.dir/archetypes.cc.o"
  "CMakeFiles/pka_workload.dir/archetypes.cc.o.d"
  "CMakeFiles/pka_workload.dir/builder.cc.o"
  "CMakeFiles/pka_workload.dir/builder.cc.o.d"
  "CMakeFiles/pka_workload.dir/cutlass.cc.o"
  "CMakeFiles/pka_workload.dir/cutlass.cc.o.d"
  "CMakeFiles/pka_workload.dir/deepbench.cc.o"
  "CMakeFiles/pka_workload.dir/deepbench.cc.o.d"
  "CMakeFiles/pka_workload.dir/kernel.cc.o"
  "CMakeFiles/pka_workload.dir/kernel.cc.o.d"
  "CMakeFiles/pka_workload.dir/mlperf.cc.o"
  "CMakeFiles/pka_workload.dir/mlperf.cc.o.d"
  "CMakeFiles/pka_workload.dir/parboil.cc.o"
  "CMakeFiles/pka_workload.dir/parboil.cc.o.d"
  "CMakeFiles/pka_workload.dir/polybench.cc.o"
  "CMakeFiles/pka_workload.dir/polybench.cc.o.d"
  "CMakeFiles/pka_workload.dir/registry.cc.o"
  "CMakeFiles/pka_workload.dir/registry.cc.o.d"
  "CMakeFiles/pka_workload.dir/rodinia.cc.o"
  "CMakeFiles/pka_workload.dir/rodinia.cc.o.d"
  "libpka_workload.a"
  "libpka_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
