
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/archetypes.cc" "src/workload/CMakeFiles/pka_workload.dir/archetypes.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/archetypes.cc.o.d"
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/pka_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/cutlass.cc" "src/workload/CMakeFiles/pka_workload.dir/cutlass.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/cutlass.cc.o.d"
  "/root/repo/src/workload/deepbench.cc" "src/workload/CMakeFiles/pka_workload.dir/deepbench.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/deepbench.cc.o.d"
  "/root/repo/src/workload/kernel.cc" "src/workload/CMakeFiles/pka_workload.dir/kernel.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/kernel.cc.o.d"
  "/root/repo/src/workload/mlperf.cc" "src/workload/CMakeFiles/pka_workload.dir/mlperf.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/mlperf.cc.o.d"
  "/root/repo/src/workload/parboil.cc" "src/workload/CMakeFiles/pka_workload.dir/parboil.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/parboil.cc.o.d"
  "/root/repo/src/workload/polybench.cc" "src/workload/CMakeFiles/pka_workload.dir/polybench.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/polybench.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/workload/CMakeFiles/pka_workload.dir/registry.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/registry.cc.o.d"
  "/root/repo/src/workload/rodinia.cc" "src/workload/CMakeFiles/pka_workload.dir/rodinia.cc.o" "gcc" "src/workload/CMakeFiles/pka_workload.dir/rodinia.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
