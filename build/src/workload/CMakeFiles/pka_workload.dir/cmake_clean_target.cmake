file(REMOVE_RECURSE
  "libpka_workload.a"
)
