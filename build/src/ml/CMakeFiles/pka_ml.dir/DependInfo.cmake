
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/pka_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/gaussian_nb.cc" "src/ml/CMakeFiles/pka_ml.dir/gaussian_nb.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/gaussian_nb.cc.o.d"
  "/root/repo/src/ml/hierarchical.cc" "src/ml/CMakeFiles/pka_ml.dir/hierarchical.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/hierarchical.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/pka_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/mlp_classifier.cc" "src/ml/CMakeFiles/pka_ml.dir/mlp_classifier.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/mlp_classifier.cc.o.d"
  "/root/repo/src/ml/pca.cc" "src/ml/CMakeFiles/pka_ml.dir/pca.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/pca.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/pka_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/sgd_classifier.cc" "src/ml/CMakeFiles/pka_ml.dir/sgd_classifier.cc.o" "gcc" "src/ml/CMakeFiles/pka_ml.dir/sgd_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
