file(REMOVE_RECURSE
  "libpka_ml.a"
)
