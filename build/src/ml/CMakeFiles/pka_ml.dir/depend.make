# Empty dependencies file for pka_ml.
# This may be replaced when dependencies are built.
