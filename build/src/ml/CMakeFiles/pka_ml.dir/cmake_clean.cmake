file(REMOVE_RECURSE
  "CMakeFiles/pka_ml.dir/classifier.cc.o"
  "CMakeFiles/pka_ml.dir/classifier.cc.o.d"
  "CMakeFiles/pka_ml.dir/gaussian_nb.cc.o"
  "CMakeFiles/pka_ml.dir/gaussian_nb.cc.o.d"
  "CMakeFiles/pka_ml.dir/hierarchical.cc.o"
  "CMakeFiles/pka_ml.dir/hierarchical.cc.o.d"
  "CMakeFiles/pka_ml.dir/kmeans.cc.o"
  "CMakeFiles/pka_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/pka_ml.dir/mlp_classifier.cc.o"
  "CMakeFiles/pka_ml.dir/mlp_classifier.cc.o.d"
  "CMakeFiles/pka_ml.dir/pca.cc.o"
  "CMakeFiles/pka_ml.dir/pca.cc.o.d"
  "CMakeFiles/pka_ml.dir/scaler.cc.o"
  "CMakeFiles/pka_ml.dir/scaler.cc.o.d"
  "CMakeFiles/pka_ml.dir/sgd_classifier.cc.o"
  "CMakeFiles/pka_ml.dir/sgd_classifier.cc.o.d"
  "libpka_ml.a"
  "libpka_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pka_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
