/**
 * @file
 * Tests for the CLI argument parser (tools/cli_args.hh).
 */

#include <gtest/gtest.h>

#include "../tools/cli_args.hh"

using pka::tools::CliArgs;

namespace
{

std::vector<char *>
argvOf(std::vector<std::string> &storage)
{
    std::vector<char *> out;
    for (auto &s : storage)
        out.push_back(s.data());
    return out;
}

} // namespace

TEST(CliArgs, PositionalsAndValueFlags)
{
    std::vector<std::string> raw = {"pka", "select", "histo",
                                    "--target-error", "2.5",
                                    "--out", "x.csv"};
    auto argv = argvOf(raw);
    CliArgs args(static_cast<int>(argv.size()), argv.data(), 2, {});
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "histo");
    EXPECT_TRUE(args.has("target-error"));
    EXPECT_DOUBLE_EQ(args.getNum("target-error", 5.0), 2.5);
    EXPECT_EQ(args.get("out"), "x.csv");
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(args.getNum("missing", 7.0), 7.0);
}

TEST(CliArgs, BooleanFlagsConsumeNoValue)
{
    std::vector<std::string> raw = {"pka", "simulate", "histo", "--pkp",
                                    "--threshold", "0.1"};
    auto argv = argvOf(raw);
    CliArgs args(static_cast<int>(argv.size()), argv.data(), 2, {"pkp"});
    EXPECT_TRUE(args.has("pkp"));
    EXPECT_DOUBLE_EQ(args.getNum("threshold", 0.25), 0.1);
    EXPECT_EQ(args.positionals().size(), 1u);
}

TEST(CliArgs, MissingValueIsFatal)
{
    std::vector<std::string> raw = {"pka", "select", "--out"};
    auto argv = argvOf(raw);
    EXPECT_DEATH(CliArgs(static_cast<int>(argv.size()), argv.data(), 2,
                         {}),
                 "needs a value");
}

TEST(CliArgs, MalformedNumberIsFatal)
{
    std::vector<std::string> raw = {"pka", "x", "--n", "abc"};
    auto argv = argvOf(raw);
    CliArgs args(static_cast<int>(argv.size()), argv.data(), 2, {});
    EXPECT_DEATH(args.getNum("n", 0), "expects a number");
}
