/**
 * @file
 * Robustness-layer tests (suites are Robust-prefixed so CI can run
 * exactly this set under sanitizers with `ctest -R Robust`): profile
 * validation and repair, checked selection entry points, confidence-
 * gated two-level classification, bootstrap stability diagnostics, and
 * a deterministic adversarial-profile fuzz sweep through the whole
 * PKS/two-level pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "core/baselines.hh"
#include "core/pka.hh"
#include "core/profile_validator.hh"
#include "core/stability.hh"
#include "core/two_level.hh"

using namespace pka;
using namespace pka::core;

namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

silicon::DetailedProfile
makeProfile(uint32_t id, const std::string &name, double insts,
            double loads, uint64_t cycles, double ctas = 64)
{
    silicon::DetailedProfile p;
    p.launchId = id;
    p.kernelName = name;
    p.cycles = cycles;
    p.metrics.instructions = insts;
    p.metrics.threadGlobalLoads = loads;
    p.metrics.coalescedGlobalLoads = loads * 2;
    p.metrics.threadGlobalStores = loads / 2;
    p.metrics.coalescedGlobalStores = loads;
    p.metrics.divergenceEff = 32;
    p.metrics.numCtas = ctas;
    return p;
}

/** Two interleaved kernel families, `n` launches each. */
std::vector<silicon::DetailedProfile>
twoFamilies(int n, uint64_t cycles_a = 1000, uint64_t cycles_b = 5000)
{
    std::vector<silicon::DetailedProfile> ps;
    for (int i = 0; i < n; ++i) {
        ps.push_back(makeProfile(2 * i, "alpha", 1e6 * (1 + 0.01 * (i % 3)),
                                 1e4, cycles_a + (i % 5)));
        ps.push_back(makeProfile(2 * i + 1, "beta",
                                 5e7 * (1 + 0.01 * (i % 3)), 4e6,
                                 cycles_b + (i % 7)));
    }
    return ps;
}

/** Light profiles matching twoFamilies' alternating name pattern. */
std::vector<silicon::LightProfile>
alternatingLight(size_t n)
{
    std::vector<silicon::LightProfile> light(n);
    for (size_t i = 0; i < n; ++i) {
        light[i].launchId = static_cast<uint32_t>(i);
        light[i].kernelName = (i % 2 == 0) ? "alpha" : "beta";
        light[i].grid = {(i % 2 == 0) ? 16u : 256u, 1, 1};
        light[i].block = {256, 1, 1};
    }
    return light;
}

} // namespace

TEST(RobustValidator, CleanInputPassesThroughUntouched)
{
    auto ps = twoFamilies(10);
    auto before = ps;
    ProfileValidator v;
    auto rep = v.screenDetailed(ps);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep.value().clean());
    EXPECT_EQ(rep.value().inspected, 20u);
    EXPECT_DOUBLE_EQ(rep.value().reweightFactor, 1.0);
    ASSERT_EQ(ps.size(), before.size());
    for (size_t i = 0; i < ps.size(); ++i)
        EXPECT_EQ(ps[i].metrics.toArray(), before[i].metrics.toArray());
}

TEST(RobustValidator, RepairsNegativeCountersAndDivergence)
{
    auto ps = twoFamilies(5);
    ps[2].metrics.threadGlobalLoads = -50.0;
    ps[4].metrics.divergenceEff = 95.0;
    ps[5].metrics.divergenceEff = 0.25;
    ProfileValidator v;
    auto rep = v.screenDetailed(ps);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().repairedValues, 3u);
    EXPECT_TRUE(rep.value().excludedLaunchIds.empty());
    EXPECT_DOUBLE_EQ(ps[2].metrics.threadGlobalLoads, 0.0);
    EXPECT_DOUBLE_EQ(ps[4].metrics.divergenceEff, 32.0);
    EXPECT_DOUBLE_EQ(ps[5].metrics.divergenceEff, 1.0);
}

TEST(RobustValidator, ExcludesNonFiniteLaunchesAndReweights)
{
    auto ps = twoFamilies(5); // 10 profiles
    ps[3].metrics.instructions = kNan;
    ps[7].metrics.coalescedGlobalLoads = kInf;
    uint32_t id3 = ps[3].launchId, id7 = ps[7].launchId;
    ProfileValidator v;
    auto rep = v.screenDetailed(ps);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(ps.size(), 8u);
    ASSERT_EQ(rep.value().excludedLaunchIds.size(), 2u);
    EXPECT_EQ(rep.value().excludedLaunchIds[0], id3);
    EXPECT_EQ(rep.value().excludedLaunchIds[1], id7);
    EXPECT_DOUBLE_EQ(rep.value().reweightFactor, 10.0 / 8.0);
    for (const auto &p : ps)
        for (double x : p.metrics.toArray())
            EXPECT_TRUE(std::isfinite(x));
}

TEST(RobustValidator, StrictRejectsWithoutMutating)
{
    auto ps = twoFamilies(3);
    ps[1].metrics.threadSharedLoads = kNan;
    auto before = ps;
    ProfileValidator v(ValidationPolicy::kStrict);
    auto rep = v.screenDetailed(ps);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.error().kind, common::ErrorKind::kBadInput);
    EXPECT_NE(rep.error().message.find("non-finite"), std::string::npos);
    ASSERT_EQ(ps.size(), before.size());
    for (size_t i = 0; i < ps.size(); ++i)
        EXPECT_EQ(ps[i].kernelName, before[i].kernelName);
}

TEST(RobustValidator, ZeroVarianceFeaturesAreFlagged)
{
    auto ps = twoFamilies(5);
    ProfileValidator v;
    auto rep = v.screenDetailed(ps);
    ASSERT_TRUE(rep.ok());
    // divergenceEff (10) and numCtas (11) are constant in twoFamilies;
    // so are the never-set counters.
    const auto &zv = rep.value().zeroVarianceFeatures;
    EXPECT_NE(std::find(zv.begin(), zv.end(), 10u), zv.end());
    EXPECT_NE(std::find(zv.begin(), zv.end(), 11u), zv.end());
    // Instructions (9) varies.
    EXPECT_EQ(std::find(zv.begin(), zv.end(), 9u), zv.end());
}

TEST(RobustValidator, LightTensorOverflowIsDropped)
{
    std::vector<silicon::LightProfile> light(3);
    for (auto &l : light) {
        l.kernelName = "k";
        l.grid = {8, 1, 1};
        l.block = {64, 1, 1};
    }
    // ~40 dims of 4e9 each overflows a double's exponent range.
    light[1].tensorDims.assign(40, 4000000000u);
    ProfileValidator v;
    auto rep = v.screenLight(light);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().repairedValues, 1u);
    EXPECT_TRUE(light[1].tensorDims.empty());
    EXPECT_EQ(light.size(), 3u); // never dropped, only repaired

    ProfileValidator strict(ValidationPolicy::kStrict);
    light[1].tensorDims.assign(40, 4000000000u);
    auto srep = strict.screenLight(light);
    ASSERT_FALSE(srep.ok());
    EXPECT_EQ(srep.error().kind, common::ErrorKind::kBadInput);
}

TEST(RobustPks, CheckedMatchesUncheckedOnCleanInput)
{
    auto ps = twoFamilies(40);
    PksResult plain = principalKernelSelection(ps);
    auto checked = principalKernelSelectionChecked(ps);
    ASSERT_TRUE(checked.ok());
    const PksResult &c = checked.value();
    EXPECT_EQ(c.chosenK, plain.chosenK);
    EXPECT_EQ(c.labels, plain.labels);
    EXPECT_EQ(c.projectedCycles, plain.projectedCycles);
    EXPECT_EQ(c.profiledCycles, plain.profiledCycles);
    ASSERT_EQ(c.groups.size(), plain.groups.size());
    for (size_t g = 0; g < c.groups.size(); ++g) {
        EXPECT_EQ(c.groups[g].members, plain.groups[g].members);
        EXPECT_EQ(c.groups[g].weight, plain.groups[g].weight);
        EXPECT_EQ(c.groups[g].representative,
                  plain.groups[g].representative);
    }
    EXPECT_TRUE(c.validation.clean());
}

TEST(RobustPks, ExclusionReweightsTheProjection)
{
    auto ps = twoFamilies(25); // 50 profiles
    ps[10].metrics.instructions = kNan;
    ps[11].metrics.threadGlobalLoads = kInf;
    auto checked = principalKernelSelectionChecked(ps);
    ASSERT_TRUE(checked.ok());
    const PksResult &c = checked.value();
    EXPECT_EQ(c.validation.excludedLaunchIds.size(), 2u);
    double total_weight = 0.0;
    for (const auto &g : c.groups)
        total_weight += g.weight;
    // Survivor weights scaled back up to the full stream size.
    EXPECT_NEAR(total_weight, 50.0, 1e-9);
    EXPECT_TRUE(std::isfinite(c.projectedCycles));
    EXPECT_GT(c.projectedCycles, 0.0);
}

TEST(RobustPks, AllExcludedIsATypedError)
{
    auto ps = twoFamilies(2);
    for (auto &p : ps)
        p.metrics.instructions = kNan;
    auto checked = principalKernelSelectionChecked(ps);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().kind, common::ErrorKind::kBadInput);

    auto empty = principalKernelSelectionChecked({});
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error().kind, common::ErrorKind::kBadInput);
}

TEST(RobustTwoLevel, CheckedMatchesUncheckedOnCleanInput)
{
    auto prefix = twoFamilies(40);
    auto light = alternatingLight(200);
    TwoLevelOptions o;
    o.detailedKernels = 80;
    TwoLevelResult plain = twoLevelSelection(prefix, light, o);
    auto checked = twoLevelSelectionChecked(prefix, light, o);
    ASSERT_TRUE(checked.ok());
    const TwoLevelResult &c = checked.value();
    EXPECT_EQ(c.labels, plain.labels);
    ASSERT_EQ(c.groups.size(), plain.groups.size());
    for (size_t g = 0; g < c.groups.size(); ++g)
        EXPECT_EQ(c.groups[g].members, plain.groups[g].members);
    EXPECT_DOUBLE_EQ(c.ensembleUnanimity, plain.ensembleUnanimity);
    EXPECT_EQ(c.abstentions, 0u);
}

TEST(RobustTwoLevel, ExcludedPrefixLaunchIsClassifiedNotLost)
{
    auto prefix = twoFamilies(40);
    prefix[6].metrics.instructions = kNan; // launch id 12
    auto light = alternatingLight(200);
    auto checked = twoLevelSelectionChecked(prefix, light, {});
    ASSERT_TRUE(checked.ok());
    const TwoLevelResult &c = checked.value();
    EXPECT_EQ(c.prefixSelection.validation.excludedLaunchIds.size(), 1u);
    EXPECT_EQ(c.detailedCount, 79u);
    // Launch conservation: every launch lands in exactly one group.
    double total = 0.0;
    for (const auto &g : c.groups)
        total += g.weight;
    EXPECT_DOUBLE_EQ(total, 200.0);
    EXPECT_EQ(c.labels.size(), 200u);
}

TEST(RobustTwoLevel, ConfidenceStatsAreSane)
{
    auto prefix = twoFamilies(40);
    auto light = alternatingLight(200);
    TwoLevelOptions o;
    o.detailedKernels = 80;
    TwoLevelResult res = twoLevelSelection(prefix, light, o);
    EXPECT_GE(res.meanEnsembleConfidence, 0.0);
    EXPECT_LE(res.meanEnsembleConfidence, 1.0 + 1e-12);
    for (double d : res.perModelDisagreement) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST(RobustTwoLevel, AbstainGateFallsBackDeterministically)
{
    auto prefix = twoFamilies(40);
    auto light = alternatingLight(200);
    TwoLevelOptions o;
    o.detailedKernels = 80;
    o.abstainThreshold = 1.0; // abstain unless the ensemble is certain
    TwoLevelResult a = twoLevelSelection(prefix, light, o);
    TwoLevelResult b = twoLevelSelection(prefix, light, o);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.abstentions, b.abstentions);
    EXPECT_EQ(a.abstentions, a.fallbackMapped);
    // Launch conservation still holds under heavy abstention.
    double total = 0.0;
    for (const auto &g : a.groups)
        total += g.weight;
    EXPECT_DOUBLE_EQ(total, 200.0);
}

TEST(RobustTwoLevel, GateOffIsBitIdenticalToLegacyVote)
{
    auto prefix = twoFamilies(40);
    auto light = alternatingLight(200);
    TwoLevelOptions off;
    off.detailedKernels = 80;
    off.abstainThreshold = 0.0;
    TwoLevelOptions legacy;
    legacy.detailedKernels = 80;
    TwoLevelResult a = twoLevelSelection(prefix, light, off);
    TwoLevelResult b = twoLevelSelection(prefix, light, legacy);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.abstentions, 0u);
}

TEST(RobustStability, DeterministicAndWellFormed)
{
    auto ps = twoFamilies(30);
    PksResult baseline = principalKernelSelection(ps);
    StabilityOptions so;
    so.replicates = 8;
    StabilityReport a = selectionStability(ps, baseline, so);
    StabilityReport b = selectionStability(ps, baseline, so);
    EXPECT_EQ(a.replicates, 8u);
    EXPECT_EQ(a.meanProjectedCycles, b.meanProjectedCycles);
    EXPECT_EQ(a.ciLow, b.ciLow);
    EXPECT_EQ(a.ciHigh, b.ciHigh);
    EXPECT_LE(a.ciLow, a.ciHigh);
    EXPECT_EQ(a.groupStability, b.groupStability);
    for (double s : a.groupStability) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
    // Two crisply separated families should be highly stable.
    EXPECT_GT(a.meanStability, 0.9);
    // The replicate distribution should bracket the baseline loosely.
    EXPECT_GT(a.meanProjectedCycles, 0.0);
    EXPECT_TRUE(std::isfinite(a.stddevProjectedCycles));
}

TEST(RobustBaselines, TBPointCheckedTypedErrors)
{
    auto empty = tbpointSelectChecked({});
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error().kind, common::ErrorKind::kBadInput);

    std::vector<TBPointKernelStats> stats(50);
    for (size_t i = 0; i < stats.size(); ++i) {
        stats[i].launchId = static_cast<uint32_t>(i);
        stats[i].cycles = 1000 + i;
        stats[i].ipc = 1.0;
    }
    TBPointOptions o;
    o.maxKernels = 10;
    auto guarded = tbpointSelectChecked(stats, o);
    ASSERT_FALSE(guarded.ok());
    EXPECT_EQ(guarded.error().kind, common::ErrorKind::kBadInput);
    EXPECT_NE(guarded.error().message.find("guardrail"),
              std::string::npos);
}

/**
 * Deterministic pipeline fuzz: inject NaN/Inf/negative poison into
 * otherwise-plausible profiles at escalating rates and drive the full
 * checked two-level pipeline. The pipeline must never crash, must keep
 * every launch accounted for, and must keep its outputs finite.
 */
class RobustFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RobustFuzz, AdversarialProfilesSurviveEndToEnd)
{
    const uint64_t seed = GetParam();
    common::Rng rng = common::Rng::forKey(seed, 0xF022, 0);
    const size_t stream = 160, prefix_n = 64;

    auto prefix = twoFamilies(static_cast<int>(prefix_n / 2));
    auto light = alternatingLight(stream);

    // Poison detailed counters: each profile has a 20% chance of one
    // corrupted cell (NaN, +/-Inf, or a negative).
    for (auto &p : prefix) {
        if (rng.uniform() >= 0.2)
            continue;
        double *cells[] = {&p.metrics.instructions,
                           &p.metrics.threadGlobalLoads,
                           &p.metrics.coalescedGlobalLoads,
                           &p.metrics.divergenceEff};
        double *c = cells[rng.uniformInt(4)];
        switch (rng.uniformInt(4)) {
          case 0: *c = kNan; break;
          case 1: *c = kInf; break;
          case 2: *c = -kInf; break;
          default: *c = -1e9; break;
        }
    }
    // Poison light annotations: oversized tensor-dims lists.
    for (auto &l : light)
        if (rng.uniform() < 0.1)
            l.tensorDims.assign(50, 4000000000u);

    auto checked = twoLevelSelectionChecked(prefix, light, {});
    ASSERT_TRUE(checked.ok()) << checked.error().str();
    const TwoLevelResult &res = checked.value();

    double total = 0.0;
    for (const auto &g : res.groups) {
        total += g.weight;
        EXPECT_TRUE(std::isfinite(g.weight));
        for (uint32_t m : g.members)
            EXPECT_LT(m, stream);
    }
    EXPECT_DOUBLE_EQ(total, static_cast<double>(stream));
    EXPECT_EQ(res.labels.size(), stream);
    for (uint32_t l : res.labels)
        EXPECT_LT(l, res.groups.size());

    // Determinism: the same poison gives the same grouping.
    auto again = twoLevelSelectionChecked(prefix, light, {});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().labels, res.labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u));
