/**
 * @file
 * Similarity-tier tests. SimilarityIndex covers the signature machinery
 * in isolation: quantization round-trip and monotonicity, grid-scale
 * invariance, entry codec validation, tolerance-bound enforcement with
 * deterministic tie-breaking, corrupt/truncated entries skipped at
 * load, persistence across reopen, orphan sweeping, and concurrent
 * insert/probe (exercised under TSan in CI). SimilarityTier covers the
 * engine contract: near-duplicates project with full provenance, the
 * exact tier never receives projected results, ineligible (budgeted)
 * launches neither probe nor donate, and the tier disabled — by store
 * or by tolerance — is bit-identical to a store-only engine.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "core/experiments.hh"
#include "silicon/gpu_spec.hh"
#include "silicon/profiler.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "store/file_store.hh"
#include "store/sig_index.hh"
#include "workload/builder.hh"

namespace fs = std::filesystem;
using namespace pka::sim;
using namespace pka::store;
using namespace pka::workload;
using pka::silicon::voltaV100;

namespace
{

/** Self-cleaning unique temp directory for one test. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("pka_xcache_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

ProgramPtr
xProg(const std::string &name, double divergence = 1.0)
{
    return ProgramBuilder(name)
        .seg(InstrClass::GlobalLoad, 2)
        .seg(InstrClass::FpAlu, 8)
        .seg(InstrClass::GlobalStore, 1)
        .mem(2.0, 0.4, 0.6)
        .divergence(divergence)
        .build();
}

KernelDescriptor
xLaunch(ProgramPtr p, uint32_t launch_id, uint32_t ctas,
        uint32_t iters = 2)
{
    KernelDescriptor k;
    k.launchId = launch_id;
    k.program = std::move(p);
    k.grid = {ctas, 1, 1};
    k.block = {128, 1, 1};
    k.iterations = iters;
    return k;
}

KernelSimKey
xKey(uint64_t salt)
{
    KernelSimKey k;
    k.specHash = 0x1111222233334444ULL;
    k.contentHash = 0x5555666677778888ULL + salt;
    k.workloadSeed = 42;
    k.seedSalt = salt;
    k.ipcBucketCycles = 30;
    k.ipcWindowBuckets = 100;
    return k;
}

SigEntry
xEntry(uint64_t salt, int32_t dim0 = 0)
{
    SigEntry e;
    e.sig.q[0] = dim0;
    e.key = xKey(salt);
    e.expThreadInsts = 1000.0;
    e.expWarpInsts = 100;
    e.numCtas = 64;
    return e;
}

/** Every .pks entry file under an index root (tmp/ excluded). */
std::vector<fs::path>
sigFiles(const fs::path &root)
{
    std::vector<fs::path> out;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec))
        if (it->is_regular_file() && it->path().extension() == ".pks")
            out.push_back(it->path());
    std::sort(out.begin(), out.end());
    return out;
}

EngineOptions
xOpts(const KernelResultStore *store, double tolerance,
      unsigned threads = 1)
{
    EngineOptions eo;
    eo.threads = threads;
    eo.memoize = true;
    eo.store = store;
    eo.xcacheTolerance = tolerance;
    return eo;
}

} // namespace

// ---------------------------------------------------------------------
// SimilarityIndex: the signature machinery in isolation.
// ---------------------------------------------------------------------

TEST(SimilarityIndex, QuantizationRoundTripAndMonotonicity)
{
    // Round trip: the cell centre is within half a step of the input.
    for (double v : {0.0, 1e-6, 0.1, 1.0, 4.49, 17.3, -2.5}) {
        int32_t q = quantizeSigDim(v);
        EXPECT_NEAR(dequantizeSigDim(q), v, kSigQuantStep / 2 + 1e-12)
            << "v=" << v;
    }

    // Monotone: increasing inputs never decrease the grid index.
    int32_t prev = quantizeSigDim(-10.0);
    for (double v = -10.0; v <= 10.0; v += 0.003) {
        int32_t q = quantizeSigDim(v);
        EXPECT_GE(q, prev) << "v=" << v;
        prev = q;
    }

    // Values closer than a step apart collapse to at-most-adjacent
    // cells, so measurement-level jitter cannot explode the distance.
    EXPECT_LE(std::abs(quantizeSigDim(1.0) -
                       quantizeSigDim(1.0 + kSigQuantStep * 0.49)),
              1);
}

TEST(SimilarityIndex, SignatureIsGridScaleInvariant)
{
    // Two launches identical except grid size: per-CTA normalization
    // must put them in the same cell (distance 0) — that is the
    // cross-app redundancy the tier exists to collapse.
    ProgramPtr p = xProg("scale");
    KernelSignature small = signatureOf(xLaunch(p, 0, 60));
    KernelSignature big = signatureOf(xLaunch(p, 1, 240));
    EXPECT_EQ(small, big);
    EXPECT_EQ(sigDistance(small, big), 0.0);

    // A genuinely different kernel (divergence shifts dim 10) is far.
    KernelSignature other =
        signatureOf(xLaunch(xProg("div", 0.5), 2, 60));
    EXPECT_GT(sigDistance(small, other), 1.0);

    // More iterations = more per-CTA work: the distance is the log-space
    // shift, and the error bound grows monotonically with it.
    KernelSignature more = signatureOf(xLaunch(p, 3, 60, 3));
    double d = sigDistance(small, more);
    EXPECT_GT(d, 0.1);
    EXPECT_LT(d, 1.0);
    EXPECT_GT(sigErrorBound(d), sigErrorBound(d / 2));
    EXPECT_DOUBLE_EQ(sigErrorBound(0.0), 0.0);
}

TEST(SimilarityIndex, EntryCodecRoundTripAndRejection)
{
    SigEntry in = xEntry(7, 123);
    in.sig.q[10] = quantizeSigDim(32.0);
    std::string bytes = encodeSigEntry(in);
    ASSERT_EQ(bytes.size(), kSigEntrySize);

    SigEntry out;
    ASSERT_TRUE(decodeSigEntry(bytes.data(), bytes.size(), &out));
    EXPECT_EQ(out.sig, in.sig);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.expThreadInsts, in.expThreadInsts);
    EXPECT_EQ(out.expWarpInsts, in.expWarpInsts);
    EXPECT_EQ(out.numCtas, in.numCtas);

    // Any single flipped byte must fail the CRC (or magic) check.
    for (size_t i = 0; i < bytes.size(); i += 7) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0x5a);
        EXPECT_FALSE(decodeSigEntry(bad.data(), bad.size(), &out))
            << "flipped byte " << i;
    }

    // Truncation and trailing junk are size mismatches, not prefixes.
    EXPECT_FALSE(decodeSigEntry(bytes.data(), bytes.size() - 1, &out));
    std::string padded = bytes + '\0';
    EXPECT_FALSE(decodeSigEntry(padded.data(), padded.size(), &out));
}

TEST(SimilarityIndex, ToleranceBoundEnforcedExactly)
{
    TempDir dir;
    SignatureIndex idx(dir.str());

    // One entry 10 grid steps away in dim 0: distance is exactly
    // 10 * kSigQuantStep = 0.009765625.
    idx.insert(xEntry(1, 10));
    const double d = 10 * kSigQuantStep;
    KernelSignature probe_sig; // all zeros

    // Just outside the bound: no neighbor — the caller must simulate.
    SigProbe miss = idx.probe(probe_sig, d * 0.999);
    EXPECT_FALSE(miss.hit);

    // At/above the bound: served, with the exact distance reported.
    SigProbe hit = idx.probe(probe_sig, d);
    ASSERT_TRUE(hit.hit);
    EXPECT_DOUBLE_EQ(hit.distance, d);
    EXPECT_EQ(hit.entry.key, xKey(1));

    // Nearest wins over merely-within-bound.
    idx.insert(xEntry(2, 3));
    SigProbe nearest = idx.probe(probe_sig, d);
    ASSERT_TRUE(nearest.hit);
    EXPECT_EQ(nearest.entry.key, xKey(2));
    EXPECT_DOUBLE_EQ(nearest.distance, 3 * kSigQuantStep);

    // Equal-distance tie breaks on the smaller key hash, so probe
    // results never depend on insertion order.
    idx.insert(xEntry(3, -3));
    SigProbe tie = idx.probe(probe_sig, d);
    ASSERT_TRUE(tie.hit);
    uint64_t h2 = kernelSimKeyHash(xKey(2));
    uint64_t h3 = kernelSimKeyHash(xKey(3));
    EXPECT_EQ(kernelSimKeyHash(tie.entry.key), std::min(h2, h3));

    SigIndexStatsSnapshot s = idx.stats();
    EXPECT_EQ(s.probes, 4u);
    EXPECT_EQ(s.probeHits, 3u);
    EXPECT_EQ(s.inserts, 3u);
    EXPECT_EQ(s.insertFailures, 0u);
}

TEST(SimilarityIndex, CorruptAndTruncatedEntriesSkippedAtLoad)
{
    TempDir dir;
    {
        SignatureIndex idx(dir.str());
        for (uint64_t i = 0; i < 4; ++i)
            idx.insert(xEntry(i, static_cast<int32_t>(i)));
        EXPECT_EQ(idx.size(), 4u);
    }

    std::vector<fs::path> files = sigFiles(dir.path());
    ASSERT_EQ(files.size(), 4u);

    {
        // Flip one byte mid-record: CRC must reject it.
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(kSigEntrySize / 2));
        char c = 0x7f;
        f.write(&c, 1);
    }
    fs::resize_file(files[1], kSigEntrySize / 2); // torn write

    SignatureIndex reopened(dir.str());
    EXPECT_EQ(reopened.size(), 2u);
    SigIndexStatsSnapshot s = reopened.stats();
    EXPECT_EQ(s.loaded, 2u);
    EXPECT_EQ(s.corruptSkipped, 2u);

    // The surviving entries still probe; the corrupt ones never serve.
    // Files are named by key hash, so identify the damaged entries by
    // stem rather than assuming sort order tracks insertion order.
    size_t hits = 0;
    for (uint64_t i = 0; i < 4; ++i) {
        KernelSignature sig;
        sig.q[0] = static_cast<int32_t>(i);
        SigProbe p = reopened.probe(sig, 0.0);
        if (!p.hit)
            continue;
        ++hits;
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(
                          kernelSimKeyHash(p.entry.key)));
        EXPECT_NE(files[0].stem().string(), hex);
        EXPECT_NE(files[1].stem().string(), hex);
    }
    EXPECT_EQ(hits, 2u);
}

TEST(SimilarityIndex, PersistsAcrossReopenAndSweepsOrphans)
{
    TempDir dir;
    {
        SignatureIndex idx(dir.str());
        idx.insert(xEntry(11, 5));
        // Inserting the same exact-cache key again is a no-op.
        idx.insert(xEntry(11, 5));
        EXPECT_EQ(idx.size(), 1u);
        EXPECT_EQ(idx.stats().inserts, 1u);
    }

    // Debris a killed writer would leave behind.
    std::ofstream(dir.path() / "tmp" / "dead.123.tmp") << "junk";

    SignatureIndex reopened(dir.str());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.stats().loaded, 1u);
    EXPECT_EQ(reopened.stats().orphansSwept, 1u);
    EXPECT_FALSE(fs::exists(dir.path() / "tmp" / "dead.123.tmp"));

    KernelSignature sig;
    sig.q[0] = 5;
    SigProbe p = reopened.probe(sig, 0.0);
    ASSERT_TRUE(p.hit);
    EXPECT_EQ(p.entry.key, xKey(11));
}

TEST(SimilarityIndex, ConcurrentInsertAndProbe)
{
    TempDir dir;
    SignatureIndex idx(dir.str());
    constexpr int kWriters = 4, kPerWriter = 16;

    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t)
        threads.emplace_back([&idx, t] {
            for (int i = 0; i < kPerWriter; ++i)
                idx.insert(xEntry(
                    static_cast<uint64_t>(t * kPerWriter + i),
                    t * kPerWriter + i));
        });
    for (int t = 0; t < 2; ++t)
        threads.emplace_back([&idx] {
            for (int i = 0; i < 200; ++i) {
                KernelSignature sig;
                sig.q[0] = i % (kWriters * kPerWriter);
                idx.probe(sig, 1.0);
            }
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(idx.size(), size_t(kWriters * kPerWriter));
    EXPECT_EQ(sigFiles(dir.path()).size(), size_t(kWriters * kPerWriter));
}

// ---------------------------------------------------------------------
// SimilarityTier: the engine contract.
// ---------------------------------------------------------------------

TEST(SimilarityTier, ProjectsNearDuplicateWithProvenance)
{
    TempDir dir;
    KernelResultStore store(dir.str(), /*similarity=*/true);
    ASSERT_NE(store.similarity(), nullptr);
    SimEngine engine(xOpts(&store, 0.05));
    GpuSimulator simulator(voltaV100());

    ProgramPtr p = xProg("dup");
    KernelDescriptor donor_k = xLaunch(p, 0, 60);
    KernelDescriptor target_k = xLaunch(p, 1, 120); // pure grid rescale

    SimJob donor_job;
    donor_job.kernel = &donor_k;
    donor_job.workloadSeed = 42;
    EngineStats st{};
    KernelSimResult donor = engine.simulateOne(simulator, donor_job, &st);
    ASSERT_FALSE(donor.projected);
    EXPECT_EQ(st.cacheMisses, 1u);
    ASSERT_EQ(store.recordCount(), 1u);

    SimJob target_job;
    target_job.kernel = &target_k;
    target_job.workloadSeed = 42;
    st = {};
    KernelSimResult proj = engine.simulateOne(simulator, target_job, &st);

    // Served by the similarity tier with full provenance.
    ASSERT_TRUE(proj.projected);
    EXPECT_EQ(st.simTierHits, 1u);
    EXPECT_EQ(st.projectedLaunches, 1u);
    EXPECT_EQ(st.cacheMisses, 0u);
    EXPECT_EQ(engine.simTierHits(), 1u);
    EXPECT_EQ(engine.projectedLaunches(), 1u);

    // Same per-CTA signature: distance 0, error bound 0.
    EXPECT_DOUBLE_EQ(proj.projectionDistance, 0.0);
    EXPECT_DOUBLE_EQ(proj.projectionErrorBound, 0.0);
    EXPECT_DOUBLE_EQ(st.projErrBound, 0.0);

    // The provenance key names the donor's exact record on disk.
    std::vector<fs::path> records;
    for (const auto &e :
         fs::recursive_directory_iterator(dir.path() / "objects"))
        if (e.is_regular_file() && e.path().extension() == ".pkr")
            records.push_back(e.path());
    ASSERT_EQ(records.size(), 1u);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(proj.projectedFromKey));
    EXPECT_EQ(records[0].stem().string(), hex);

    // Table-1 projection: per-CTA work ratio x wave ratio. A pure grid
    // doubling keeps per-CTA work fixed, and both grids fit in one
    // machine wave here, so the projected cycles equal the donor's —
    // the extra CTAs run concurrently, not back to back. Instruction
    // counters, by contrast, scale with total work (exactly 2x).
    ASSERT_GT(donor.waveSize, target_k.numCtas()); // both single-wave
    EXPECT_EQ(proj.cycles, donor.cycles);
    EXPECT_EQ(proj.waveSize, donor.waveSize);
    EXPECT_DOUBLE_EQ(proj.threadInstructions,
                     donor.threadInstructions * 2.0);
    EXPECT_EQ(proj.finishedCtas, target_k.numCtas());
    EXPECT_EQ(proj.totalCtas, target_k.numCtas());
    EXPECT_EQ(proj.expectedWarpInstructions,
              target_k.totalWarpInstructions());

    // Projected results are published to memory (tagged) but NEVER to
    // the exact disk tier: still exactly one record on disk.
    EXPECT_EQ(store.recordCount(), 1u);

    // A memory re-hit of the projected result still counts as projected.
    st = {};
    KernelSimResult again = engine.simulateOne(simulator, target_job, &st);
    EXPECT_TRUE(again.projected);
    EXPECT_EQ(st.cacheHits, 1u);
    EXPECT_EQ(engine.projectedLaunches(), 2u);
}

TEST(SimilarityTier, MultiWaveGridsScaleByWaveCount)
{
    TempDir dir;
    KernelResultStore store(dir.str(), /*similarity=*/true);
    SimEngine engine(xOpts(&store, 0.05));
    GpuSimulator simulator(voltaV100());

    // 1024-thread blocks: 2 CTAs resident per SM, so the wave size is
    // small enough to fill cheaply. The donor occupies exactly one
    // wave; the target grid is two waves of the same per-CTA work, so
    // projected cycles double.
    ProgramPtr p = xProg("wave");
    KernelDescriptor probe_k = xLaunch(p, 0, 1);
    probe_k.block = {1024, 1, 1};
    SimJob jp;
    jp.kernel = &probe_k;
    jp.workloadSeed = 42;
    // Storeless engine: the capacity probe must not seed the sig index
    // (its per-CTA signature matches the donor's).
    SimEngine plain{EngineOptions{}};
    uint64_t wave =
        plain.simulateOne(simulator, jp).waveSize; // machine capacity
    ASSERT_GT(wave, 0u);

    KernelDescriptor donor_k = xLaunch(p, 1, static_cast<uint32_t>(wave));
    donor_k.block = {1024, 1, 1};
    KernelDescriptor target_k =
        xLaunch(p, 2, static_cast<uint32_t>(2 * wave));
    target_k.block = {1024, 1, 1};

    SimJob jd, jt;
    jd.kernel = &donor_k;
    jt.kernel = &target_k;
    jd.workloadSeed = jt.workloadSeed = 42;
    KernelSimResult donor = engine.simulateOne(simulator, jd);
    KernelSimResult proj = engine.simulateOne(simulator, jt);
    ASSERT_TRUE(proj.projected);
    EXPECT_EQ(proj.cycles,
              static_cast<uint64_t>(
                  std::llround(static_cast<double>(donor.cycles) * 2.0)));
}

TEST(SimilarityTier, NeighborOutsideToleranceSimulates)
{
    TempDir dir;
    KernelResultStore store(dir.str(), /*similarity=*/true);
    GpuSimulator simulator(voltaV100());

    // iterations 2 vs 3: same kernel family but a real per-CTA work
    // shift — the signature distance lands well outside a 1% bound.
    ProgramPtr p = xProg("near");
    KernelDescriptor a = xLaunch(p, 0, 60, 2);
    KernelDescriptor b = xLaunch(p, 1, 60, 3);
    double d = sigDistance(signatureOf(a), signatureOf(b));
    ASSERT_GT(d, 0.01);

    {
        SimEngine tight(xOpts(&store, d * 0.5));
        SimJob ja, jb;
        ja.kernel = &a;
        jb.kernel = &b;
        ja.workloadSeed = jb.workloadSeed = 42;
        tight.simulateOne(simulator, ja);
        KernelSimResult rb = tight.simulateOne(simulator, jb);
        EXPECT_FALSE(rb.projected); // just outside the bound: simulate
        EXPECT_EQ(tight.simTierHits(), 0u);
        EXPECT_EQ(store.recordCount(), 2u);
    }
    {
        // A fresh engine with a bound beyond d projects from the donor
        // the previous run persisted (cross-process replay).
        SimEngine loose(xOpts(&store, d * 1.5));
        KernelDescriptor c = xLaunch(p, 2, 90, 3);
        SimJob jc;
        jc.kernel = &c;
        jc.workloadSeed = 42;
        KernelSimResult rc = loose.simulateOne(simulator, jc);
        ASSERT_TRUE(rc.projected);
        EXPECT_DOUBLE_EQ(rc.projectionDistance, 0.0); // same per-CTA sig
        EXPECT_EQ(store.recordCount(), 2u);           // nothing new
    }
}

TEST(SimilarityTier, BudgetedLaunchesNeitherProbeNorDonate)
{
    TempDir dir;
    KernelResultStore store(dir.str(), /*similarity=*/true);
    SimEngine engine(xOpts(&store, 0.05));
    GpuSimulator simulator(voltaV100());

    ProgramPtr p = xProg("budget");
    KernelDescriptor k = xLaunch(p, 0, 60);
    SimJob job;
    job.kernel = &k;
    job.workloadSeed = 42;
    job.opts.maxThreadInstructions = 1000; // truncated run

    engine.simulateOne(simulator, job);
    ASSERT_NE(store.similarity(), nullptr);
    EXPECT_EQ(store.similarity()->size(), 0u); // did not donate

    // A full-run twin of a budgeted record must simulate, not project.
    KernelDescriptor full = xLaunch(p, 1, 120);
    SimJob jf;
    jf.kernel = &full;
    jf.workloadSeed = 42;
    KernelSimResult r = engine.simulateOne(simulator, jf);
    EXPECT_FALSE(r.projected);
    EXPECT_EQ(engine.simTierHits(), 0u);
}

// ---------------------------------------------------------------------
// StoreRetrySimilarity: the sig/ index under injected store-I/O faults
// (the same "store.read"/"store.write" sites as exact records, so the
// fault-injection CI matrix drives both tiers with one spec).
// ---------------------------------------------------------------------

class StoreRetrySimilarity : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!pka::common::kFaultInjectionCompiledIn)
            GTEST_SKIP() << "built with -DPKA_FAULT_INJECTION=OFF";
        pka::common::FaultInjector::instance().reset();
    }
    void TearDown() override
    {
        pka::common::FaultInjector::instance().reset();
    }
    static uint64_t faultSeed()
    {
        const char *s = std::getenv("PKA_FAULT_SEED");
        return (s && *s) ? std::strtoull(s, nullptr, 10) : 1;
    }
};

TEST_F(StoreRetrySimilarity, TransientWriteFailureRetriesThenPersists)
{
    TempDir dir;
    SignatureIndex idx(dir.str());

    std::vector<pka::common::FaultSpec> specs;
    specs.push_back({.site = "store.write",
                     .kind = pka::common::FaultKind::kIoError,
                     .maxFires = 2});
    pka::common::FaultInjector::instance().configure(specs, faultSeed());

    idx.insert(xEntry(1, 5));
    SigIndexStatsSnapshot s = idx.stats();
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.ioRetries, 2u);
    EXPECT_EQ(s.insertFailures, 0u);
    EXPECT_EQ(sigFiles(dir.path()).size(), 1u); // persisted after retry
}

TEST_F(StoreRetrySimilarity, ExhaustedWriteKeepsEntryResident)
{
    TempDir dir;
    SignatureIndex idx(dir.str());

    std::vector<pka::common::FaultSpec> specs;
    specs.push_back({.site = "store.write",
                     .kind = pka::common::FaultKind::kIoError});
    pka::common::FaultInjector::instance().configure(specs, faultSeed());

    idx.insert(xEntry(2, 9));
    SigIndexStatsSnapshot s = idx.stats();
    EXPECT_EQ(s.insertFailures, 1u);
    EXPECT_EQ(sigFiles(dir.path()).empty(), true);

    // The tier degrades to process-local: the entry still probes.
    KernelSignature sig;
    sig.q[0] = 9;
    EXPECT_TRUE(idx.probe(sig, 0.0).hit);
}

TEST_F(StoreRetrySimilarity, TornWritesAreSkippedAtNextLoad)
{
    TempDir dir;
    {
        SignatureIndex idx(dir.str());
        // A short write publishes a truncated entry (crash between
        // write and fsync).
        std::vector<pka::common::FaultSpec> specs;
        specs.push_back({.site = "store.write",
                         .kind = pka::common::FaultKind::kShortWrite,
                         .maxFires = 1});
        pka::common::FaultInjector::instance().configure(specs,
                                                         faultSeed());
        idx.insert(xEntry(3, 1));
        idx.insert(xEntry(4, 2));
    }
    pka::common::FaultInjector::instance().reset();

    SignatureIndex reopened(dir.str());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.stats().corruptSkipped, 1u);
}

TEST_F(StoreRetrySimilarity, ReadFaultAtLoadSkipsEntry)
{
    TempDir dir;
    {
        SignatureIndex idx(dir.str());
        idx.insert(xEntry(5, 4));
        idx.insert(xEntry(6, 8));
    }

    // An I/O fault while loading one entry: degraded to corrupt-skip
    // (load is a scan, not a keyed lookup, so there is no retry path —
    // the entry simply does not serve this process).
    std::vector<pka::common::FaultSpec> specs;
    specs.push_back({.site = "store.read",
                     .kind = pka::common::FaultKind::kIoError,
                     .maxFires = 1});
    pka::common::FaultInjector::instance().configure(specs, faultSeed());

    SignatureIndex reopened(dir.str());
    EXPECT_EQ(reopened.size() + reopened.stats().corruptSkipped, 2u);
    EXPECT_LE(reopened.size(), 2u);
}

TEST(SimilarityTier, DisabledTierIsBitIdentical)
{
    GpuSimulator simulator(voltaV100());
    ProgramPtr p = xProg("golden");
    Workload w;
    w.suite = "test";
    w.name = "xcache_golden";
    w.seed = 42;
    for (uint32_t i = 0; i < 8; ++i)
        w.launches.push_back(xLaunch(p, i, 40 + (i % 4) * 20, 2 + i % 2));

    // Reference: no store at all.
    EngineOptions plain;
    plain.threads = 2;
    plain.memoize = true;
    SimEngine e0(plain);
    pka::core::FullSimResult base =
        pka::core::fullSimulate(e0, simulator, w);
    ASSERT_GT(base.cycles, 0.0);
    EXPECT_EQ(base.projectedLaunches, 0u);

    // --xcache off: store opened exact-only. No sig/ directory may
    // appear, and every aggregate is bit-identical.
    TempDir exact_dir;
    {
        KernelResultStore store(exact_dir.str(), /*similarity=*/false);
        EXPECT_EQ(store.similarity(), nullptr);
        SimEngine e1(xOpts(&store, 0.0, 2));
        pka::core::FullSimResult r =
            pka::core::fullSimulate(e1, simulator, w);
        EXPECT_EQ(r.cycles, base.cycles);
        EXPECT_EQ(r.threadInsts, base.threadInsts);
        EXPECT_EQ(r.projectedLaunches, 0u);
        EXPECT_EQ(r.projErrBound, 0.0);
        ASSERT_EQ(r.perKernel.size(), base.perKernel.size());
        for (size_t i = 0; i < r.perKernel.size(); ++i) {
            EXPECT_EQ(r.perKernel[i].cycles, base.perKernel[i].cycles);
            EXPECT_FALSE(r.perKernel[i].projected);
        }
    }
    EXPECT_FALSE(fs::exists(exact_dir.path() / "sig"));

    // Similarity-opened store but tolerance 0: the tier never fires
    // (neither probes nor inserts), bits unchanged.
    TempDir sim_dir;
    KernelResultStore store(sim_dir.str(), /*similarity=*/true);
    SimEngine e2(xOpts(&store, 0.0, 2));
    pka::core::FullSimResult r =
        pka::core::fullSimulate(e2, simulator, w);
    EXPECT_EQ(r.cycles, base.cycles);
    EXPECT_EQ(r.projectedLaunches, 0u);
    ASSERT_NE(store.similarity(), nullptr);
    EXPECT_EQ(store.similarity()->size(), 0u);
}
