/**
 * @file
 * Fault-tolerance tests driven by the deterministic fault-injection
 * harness: injector semantics (spec grammar, determinism, fire budgets),
 * watchdog cancellation, engine retry/quarantine, store I/O retry and
 * torn-record handling, crash/resume bit-identity through a torn journal
 * tail plus a half-written record, and the campaign-level acceptance
 * scenario — an MLPerf-scale stream with one hung and one always-throwing
 * kernel completes under a quorum policy with exactly two quarantined
 * kernels and reweighted projections.
 *
 * Every suite arms the process-wide FaultInjector programmatically (the
 * $PKA_FAULT_SEED env var, when set, varies the seed across CI matrix
 * legs) and disarms it on teardown, so the rest of the binary's tests
 * always run on the clean path.
 */

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/fault.hh"
#include "core/experiments.hh"
#include "core/pka.hh"
#include "silicon/gpu_spec.hh"
#include "sim/cancel.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "store/file_store.hh"
#include "store/journal.hh"
#include "workload/builder.hh"
#include "workload/suites.hh"

namespace fs = std::filesystem;
using ::testing::HasSubstr;
using namespace pka::sim;
using namespace pka::workload;
using pka::common::ErrorKind;
using pka::common::FaultInjector;
using pka::common::FaultKind;
using pka::common::FaultSpec;
using pka::common::kFaultInjectionCompiledIn;
using pka::silicon::voltaV100;

namespace
{

/** CI-matrix base seed: $PKA_FAULT_SEED, default 1. */
uint64_t
faultSeed()
{
    const char *s = std::getenv("PKA_FAULT_SEED");
    return (s && *s) ? std::strtoull(s, nullptr, 10) : 1;
}

/** Self-cleaning unique temp directory for one test. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("pka_fault_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

ProgramPtr
testProg(const std::string &name)
{
    return ProgramBuilder(name)
        .seg(InstrClass::GlobalLoad, 2)
        .seg(InstrClass::FpAlu, 8)
        .seg(InstrClass::GlobalStore, 1)
        .mem(2.0, 0.4, 0.6)
        .build();
}

KernelDescriptor
makeLaunch(ProgramPtr p, uint32_t launch_id, uint32_t ctas, uint32_t iters)
{
    KernelDescriptor k;
    k.launchId = launch_id;
    k.program = std::move(p);
    k.grid = {ctas, 1, 1};
    k.block = {128, 1, 1};
    k.iterations = iters;
    k.ctaWorkCv = 0.3;
    return k;
}

/** N launches of one program plus one launch of a second program. */
Workload
smallWorkload(size_t launches)
{
    Workload w;
    w.suite = "test";
    w.name = "fault_small";
    w.seed = 42;
    ProgramPtr a = testProg("alpha");
    ProgramPtr b = testProg("beta");
    for (size_t i = 0; i < launches; ++i)
        w.launches.push_back(makeLaunch(
            i + 1 == launches ? b : a, static_cast<uint32_t>(i),
            40 + static_cast<uint32_t>(i % 3) * 24, 2));
    return w;
}

/** Arms the injector per test and guarantees clean-path teardown. */
class FaultFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!kFaultInjectionCompiledIn)
            GTEST_SKIP() << "built with -DPKA_FAULT_INJECTION=OFF";
        FaultInjector::instance().reset();
    }
    void TearDown() override { FaultInjector::instance().reset(); }
};

using FaultInjectionTest = FaultFixture;
using QuarantineTest = FaultFixture;
using StoreRetryTest = FaultFixture;
using CrashResumeTest = FaultFixture;
using CampaignFaultsTest = FaultFixture;

KernelSimKey
sampleKey(uint64_t salt = 0)
{
    KernelSimKey k;
    k.specHash = 0x1111222233334444ULL ^ salt;
    k.contentHash = 0x5555666677778888ULL + salt;
    k.workloadSeed = 42;
    k.seedSalt = 7 + salt;
    k.maxThreadInstructions = 1'000'000;
    k.maxCycles = 2'000'000;
    k.ipcBucketCycles = 512;
    k.ipcWindowBuckets = 16;
    k.scheduler = 1;
    return k;
}

KernelSimResult
sampleResult()
{
    KernelSimResult r;
    r.cycles = 123456789;
    r.threadInstructions = 9.875e8;
    r.warpInstructions = 30864197;
    r.finishedCtas = 4096;
    r.totalCtas = 4096;
    r.waveSize = 160;
    r.dramUtilPct = 61.25;
    r.l2MissPct = 12.5;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// FaultInjection: the harness itself.
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, SpecGrammarRoundTripsAndRejectsGarbage)
{
    auto &fi = FaultInjector::instance();
    std::string err;
    EXPECT_TRUE(fi.configureFromString(
        "store.read:io:250,worker.exec:throw:key=1f2e3d4c5b6a7988,"
        "journal.append:short:max=3",
        faultSeed(), &err))
        << err;
    EXPECT_TRUE(fi.enabled());

    for (const char *bad :
         {"", "worker.exec", "worker.exec:sparkle", "a:throw:1001",
          "a:io:key=zz", "a:io:max=x"}) {
        std::string e;
        EXPECT_FALSE(fi.configureFromString(bad, 1, &e)) << bad;
        EXPECT_FALSE(e.empty()) << bad;
    }
}

TEST_F(FaultInjectionTest, DecisionsAreDeterministicPerSeedAndVisitOrder)
{
    auto &fi = FaultInjector::instance();
    auto pattern = [&](uint64_t seed) {
        std::vector<FaultSpec> specs;
        specs.push_back(
            {.site = "store.read", .kind = FaultKind::kIoError,
             .permille = 300});
        fi.configure(specs, seed);
        std::vector<int> fired;
        for (uint64_t key = 0; key < 200; ++key)
            fired.push_back(fi.shouldFire("store.read", key) ? 1 : 0);
        return fired;
    };
    uint64_t seed = faultSeed();
    auto a = pattern(seed);
    auto b = pattern(seed);
    EXPECT_EQ(a, b); // same seed + visit order => identical pattern
    int fires = 0;
    for (int f : a)
        fires += f;
    EXPECT_GT(fires, 0);   // p=0.3 over 200 draws
    EXPECT_LT(fires, 200); // ...and not all of them
    EXPECT_NE(a, pattern(seed + 17)); // another seed, another pattern
}

TEST_F(FaultInjectionTest, MatchKeyAndMaxFiresScopeTheBlastRadius)
{
    auto &fi = FaultInjector::instance();
    std::vector<FaultSpec> specs;
    specs.push_back({.site = "worker.exec", .kind = FaultKind::kThrow,
                     .matchKey = 0xabcdULL});
    specs.push_back({.site = "store.write", .kind = FaultKind::kIoError,
                     .maxFires = 2});
    fi.configure(specs, faultSeed());

    EXPECT_FALSE(fi.shouldFire("worker.exec", 0x1234));
    EXPECT_TRUE(fi.shouldFire("worker.exec", 0xabcd).has_value());
    EXPECT_FALSE(fi.shouldFire("sim.loop", 0xabcd)); // wrong site

    int write_fires = 0;
    for (int i = 0; i < 10; ++i)
        write_fires += fi.shouldFire("store.write", 99) ? 1 : 0;
    EXPECT_EQ(write_fires, 2); // transient: budget exhausted, then clean
    EXPECT_EQ(fi.fireCount("store.write"), 2u);

    fi.reset();
    EXPECT_FALSE(fi.enabled());
    EXPECT_FALSE(pka::common::faultAt("worker.exec", 0xabcd).has_value());
}

// ---------------------------------------------------------------------
// Watchdog: CancelToken + engine/simulator cooperation (no injection).
// ---------------------------------------------------------------------

TEST(Watchdog, CycleBudgetTripsRetriesAndQuarantines)
{
    GpuSimulator simulator(voltaV100());
    Workload w = smallWorkload(1);

    EngineOptions eo;
    eo.threads = 1;
    eo.taskCycleBudget = 64; // far below the kernel's natural runtime
    eo.maxTaskAttempts = 2;
    SimEngine engine(eo);

    std::vector<SimJob> jobs(1);
    jobs[0].kernel = &w.launches[0];
    jobs[0].workloadSeed = w.seed;

    EngineStats stats;
    auto res = engine.runChecked(simulator, jobs, &stats);
    ASSERT_EQ(res.size(), 1u);
    ASSERT_FALSE(res[0].ok());
    EXPECT_EQ(res[0].error().kind, ErrorKind::kTimeout);
    EXPECT_THAT(res[0].error().message, HasSubstr("watchdog"));
    EXPECT_EQ(res[0].error().attempts, 2u);
    EXPECT_TRUE(res[0].error().quarantined);
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_EQ(stats.taskRetries, 1u);
    EXPECT_EQ(stats.degradedRuns, 1u); // retry demoted to reference core
    EXPECT_EQ(stats.quarantinedKernels, 1u);
    EXPECT_EQ(engine.quarantinedCount(), 1u);
}

TEST(Watchdog, CallerArmedTokenCancelsAsKCancelled)
{
    GpuSimulator simulator(voltaV100());
    Workload w = smallWorkload(1);
    CancelToken tok;
    tok.requestCancel();
    SimOptions opts;
    opts.cancel = &tok;
    try {
        simulator.simulateKernel(w.launches[0], w.seed, opts);
        FAIL() << "expected a TaskException";
    } catch (const pka::common::TaskException &ex) {
        EXPECT_EQ(ex.kind(), ErrorKind::kCancelled);
        EXPECT_THAT(std::string(ex.what()), HasSubstr("watchdog"));
    }
    EXPECT_EQ(tok.reason(), CancelToken::Reason::kCancelled);
}

TEST(Watchdog, GenerousDeadlineLeavesResultsBitIdentical)
{
    GpuSimulator simulator(voltaV100());
    Workload w = smallWorkload(4);

    SimEngine plain(EngineOptions{.threads = 2});
    EngineOptions wo;
    wo.threads = 2;
    wo.taskTimeoutSec = 300.0; // armed, never trips
    SimEngine watched(wo);

    pka::core::FullSimResult a =
        pka::core::fullSimulate(plain, simulator, w);
    pka::core::FullSimResult b =
        pka::core::fullSimulate(watched, simulator, w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.threadInsts, b.threadInsts);
    EXPECT_EQ(a.dramUtilPct, b.dramUtilPct);
}

// ---------------------------------------------------------------------
// Quarantine: engine retry policy under injected worker faults.
// ---------------------------------------------------------------------

TEST_F(QuarantineTest, RepeatedKernelQuarantinesOnceThenSkips)
{
    GpuSimulator simulator(voltaV100());
    Workload w;
    w.suite = "test";
    w.name = "fault_repeat";
    w.seed = 7;
    ProgramPtr p = testProg("poison");
    for (uint32_t i = 0; i < 8; ++i)
        w.launches.push_back(makeLaunch(p, i, 64, 3));

    std::vector<FaultSpec> specs;
    specs.push_back({.site = "worker.exec", .kind = FaultKind::kThrow});
    FaultInjector::instance().configure(specs, faultSeed());

    EngineOptions eo;
    eo.threads = 1; // serial: deterministic skip accounting
    eo.maxTaskAttempts = 2;
    SimEngine engine(eo);

    std::vector<SimJob> jobs(w.launches.size());
    for (size_t i = 0; i < w.launches.size(); ++i) {
        jobs[i].kernel = &w.launches[i];
        jobs[i].workloadSeed = w.seed;
    }
    EngineStats stats;
    auto res = engine.runChecked(simulator, jobs, &stats);

    EXPECT_EQ(stats.failures, 8u);
    EXPECT_EQ(stats.quarantinedKernels, 1u); // one kernel, one entry
    EXPECT_EQ(stats.quarantineSkips, 7u);    // the rest skipped in O(1)
    EXPECT_EQ(stats.taskRetries, 1u); // only launch 0 burned retries
    ASSERT_EQ(stats.launchErrors.size(), 8u);
    for (const auto &r : res) {
        ASSERT_FALSE(r.ok());
        EXPECT_TRUE(r.error().quarantined);
        EXPECT_THAT(r.error().message, HasSubstr("injected worker fault"));
    }
    EXPECT_TRUE(engine.isQuarantined(launchContentHash(w.launches[0])));
}

TEST(Quarantine, BadInputFailsFastWithoutRetryOrQuarantine)
{
    GpuSimulator simulator(voltaV100());
    SimEngine engine(EngineOptions{.threads = 1});

    std::vector<SimJob> jobs(1); // kernel left null
    EngineStats stats;
    auto res = engine.runChecked(simulator, jobs, &stats);
    ASSERT_FALSE(res[0].ok());
    EXPECT_EQ(res[0].error().kind, ErrorKind::kBadInput);
    EXPECT_EQ(stats.taskRetries, 0u);
    EXPECT_EQ(stats.quarantinedKernels, 0u);
    EXPECT_EQ(engine.quarantinedCount(), 0u);
}

// ---------------------------------------------------------------------
// StoreRetry: transient I/O, exhausted retries, torn and corrupt records.
// ---------------------------------------------------------------------

TEST_F(StoreRetryTest, TransientReadFailureRetriesThenHits)
{
    TempDir dir;
    pka::store::KernelResultStore store(dir.str());
    KernelSimKey key = sampleKey();
    store.put(key, sampleResult());

    std::vector<FaultSpec> specs;
    specs.push_back({.site = "store.read", .kind = FaultKind::kIoError,
                     .maxFires = 2});
    FaultInjector::instance().configure(specs, faultSeed());

    KernelSimResult out;
    EXPECT_EQ(store.get(key, &out), pka::store::Lookup::kHit);
    EXPECT_EQ(out.cycles, sampleResult().cycles);
    auto s = store.stats();
    EXPECT_EQ(s.ioRetries, 2u);
    EXPECT_EQ(s.retryExhausted, 0u);
}

TEST_F(StoreRetryTest, ExhaustedReadRetriesDegradeToMiss)
{
    TempDir dir;
    pka::store::KernelResultStore store(dir.str());
    KernelSimKey key = sampleKey();
    store.put(key, sampleResult());

    std::vector<FaultSpec> specs;
    specs.push_back({.site = "store.read", .kind = FaultKind::kIoError});
    FaultInjector::instance().configure(specs, faultSeed());

    KernelSimResult out;
    EXPECT_EQ(store.get(key, &out), pka::store::Lookup::kMiss);
    auto s = store.stats();
    EXPECT_EQ(s.retryExhausted, 1u);
    EXPECT_EQ(s.ioRetries,
              pka::store::KernelResultStore::kIoAttempts - 1);
}

TEST_F(StoreRetryTest, ExhaustedWriteRetriesCountPutFailure)
{
    TempDir dir;
    pka::store::KernelResultStore store(dir.str());

    std::vector<FaultSpec> specs;
    specs.push_back({.site = "store.write", .kind = FaultKind::kIoError});
    FaultInjector::instance().configure(specs, faultSeed());

    store.put(sampleKey(), sampleResult());
    auto s = store.stats();
    EXPECT_EQ(s.putFailures, 1u);
    EXPECT_EQ(s.retryExhausted, 1u);
    EXPECT_EQ(s.puts, 0u);
}

TEST_F(StoreRetryTest, TornAndCorruptRecordsAreRejectedNeverServed)
{
    TempDir dir;
    pka::store::KernelResultStore store(dir.str());

    // A short write publishes a torn record (crash between write and
    // fsync); readers must classify it corrupt, not serve half a result.
    std::vector<FaultSpec> specs;
    specs.push_back({.site = "store.write", .kind = FaultKind::kShortWrite,
                     .maxFires = 1});
    FaultInjector::instance().configure(specs, faultSeed());
    KernelSimKey torn = sampleKey(1);
    store.put(torn, sampleResult());
    FaultInjector::instance().reset();

    KernelSimResult out;
    EXPECT_EQ(store.get(torn, &out), pka::store::Lookup::kCorrupt);

    // Bit corruption on the read path: CRC catches it; with the fault
    // budget spent, the next read of the same intact record succeeds.
    KernelSimKey key = sampleKey(2);
    store.put(key, sampleResult());
    std::vector<FaultSpec> corrupt;
    corrupt.push_back({.site = "store.read", .kind = FaultKind::kCorrupt,
                       .maxFires = 1});
    FaultInjector::instance().configure(corrupt, faultSeed());
    EXPECT_EQ(store.get(key, &out), pka::store::Lookup::kCorrupt);
    EXPECT_EQ(store.get(key, &out), pka::store::Lookup::kHit);
    EXPECT_GE(store.stats().corruptSkipped, 2u);
}

TEST(StoreRetry, OrphanedStagingFilesAreSweptOnOpen)
{
    TempDir dir;
    { pka::store::KernelResultStore create(dir.str()); }
    std::ofstream(dir.path() / "tmp" / "deadbeef.7.tmp") << "debris";
    std::ofstream(dir.path() / "tmp" / "cafe.tmp") << "more";

    pka::store::KernelResultStore store(dir.str());
    EXPECT_EQ(store.stats().orphansSwept, 2u);
    EXPECT_FALSE(fs::exists(dir.path() / "tmp" / "cafe.tmp"));
}

// ---------------------------------------------------------------------
// CrashResume: torn journal tail + half-written record, bit-identical.
// ---------------------------------------------------------------------

TEST_F(CrashResumeTest, JournalShortWriteLosesOnlyResumeCredit)
{
    TempDir dir;
    std::string path = (dir.path() / "j.pkj").string();
    {
        pka::store::CampaignJournal j(path, 0xfeed, 4, false);
        j.markDone({0});
        std::vector<FaultSpec> specs;
        specs.push_back({.site = "journal.append",
                         .kind = FaultKind::kShortWrite, .maxFires = 1});
        FaultInjector::instance().configure(specs, faultSeed());
        j.markDone({1}); // torn: "done," reaches disk without an index
        FaultInjector::instance().reset();
        j.markDone({2}); // lands after the torn bytes => unreadable
    }
    pka::store::CampaignJournal j(path, 0xfeed, 4, true);
    EXPECT_TRUE(j.isDone(0)); // the intact prefix is trusted
    EXPECT_FALSE(j.isDone(1));
    EXPECT_FALSE(j.isDone(2)); // tail after the tear is discarded
    EXPECT_EQ(j.resumedCount(), 1u);
}

TEST_F(CrashResumeTest, TornJournalAndTruncatedRecordResumeBitIdentical)
{
    TempDir dir;
    fs::path store_dir = dir.path() / "store";
    fs::path ckpt_dir = dir.path() / "ckpt";
    fs::create_directories(ckpt_dir);

    GpuSimulator simulator(voltaV100());
    Workload w = smallWorkload(12);
    pka::core::CampaignCheckpoint cp;
    cp.dir = ckpt_dir.string();

    pka::core::FullSimResult base;
    {
        pka::store::KernelResultStore store(store_dir.string());
        EngineOptions eo;
        eo.threads = 2;
        eo.store = &store;
        SimEngine engine(eo);
        cp.resume = false;
        base = pka::core::fullSimulate(engine, simulator, w, &cp);
        ASSERT_GT(base.cycles, 0.0);
    }

    // Simulate the crash: tear the journal tail mid-append and truncate
    // one persisted record to half its bytes.
    bool tampered_journal = false;
    for (const auto &e : fs::directory_iterator(ckpt_dir)) {
        if (e.path().extension() != ".pkj")
            continue;
        std::ofstream os(e.path(), std::ios::app);
        os << "done,"; // torn final line, no index, no newline
        tampered_journal = true;
    }
    ASSERT_TRUE(tampered_journal);
    bool truncated_record = false;
    for (const auto &e : fs::recursive_directory_iterator(store_dir)) {
        if (!e.is_regular_file() || e.path().extension() != ".pkr")
            continue;
        fs::resize_file(e.path(), fs::file_size(e.path()) / 2);
        truncated_record = true;
        break;
    }
    ASSERT_TRUE(truncated_record);

    // Resume in a fresh "process": new engine (cold memory cache), same
    // store and journal. The torn tail is dropped, the truncated record
    // is rejected and re-simulated, and the aggregates are bit-identical.
    pka::store::KernelResultStore store(store_dir.string());
    EngineOptions eo;
    eo.threads = 2;
    eo.store = &store;
    SimEngine engine(eo);
    cp.resume = true;
    pka::core::FullSimResult resumed =
        pka::core::fullSimulate(engine, simulator, w, &cp);

    EXPECT_GT(resumed.resumedLaunches, 0u);
    EXPECT_EQ(resumed.cycles, base.cycles);
    EXPECT_EQ(resumed.threadInsts, base.threadInsts);
    EXPECT_EQ(resumed.dramUtilPct, base.dramUtilPct);
    ASSERT_EQ(resumed.perKernel.size(), base.perKernel.size());
    for (size_t i = 0; i < base.perKernel.size(); ++i)
        EXPECT_EQ(resumed.perKernel[i].cycles, base.perKernel[i].cycles);
    EXPECT_GE(store.stats().corruptSkipped, 1u);
}

// ---------------------------------------------------------------------
// CampaignFaults: the acceptance scenario on an MLPerf-scale stream.
// ---------------------------------------------------------------------

namespace
{

/** A small-scale GNMT stream plus the content hashes of two distinct
 *  kernels (the designated hang victim and throw victim). */
struct GnmtScenario
{
    Workload w;
    uint64_t hangKey = 0;
    uint64_t throwKey = 0;
    size_t victimLaunches = 0; ///< launches of either victim kernel
};

GnmtScenario
gnmtScenario()
{
    GenOptions g;
    g.mlperfScale = 0.005;
    auto w = buildWorkload("gnmt_training", g);
    EXPECT_TRUE(w.has_value());
    GnmtScenario s;
    s.w = std::move(*w);
    s.hangKey = launchContentHash(s.w.launches[0]);
    for (const auto &k : s.w.launches) {
        uint64_t h = launchContentHash(k);
        if (s.throwKey == 0 && h != s.hangKey)
            s.throwKey = h;
    }
    EXPECT_NE(s.throwKey, 0u);
    for (const auto &k : s.w.launches) {
        uint64_t h = launchContentHash(k);
        if (h == s.hangKey || h == s.throwKey)
            ++s.victimLaunches;
    }
    return s;
}

void
armVictims(const GnmtScenario &s)
{
    std::vector<FaultSpec> specs;
    specs.push_back({.site = "worker.exec", .kind = FaultKind::kHang,
                     .matchKey = s.hangKey});
    specs.push_back({.site = "worker.exec", .kind = FaultKind::kThrow,
                     .matchKey = s.throwKey});
    FaultInjector::instance().configure(specs, faultSeed());
}

EngineOptions
campaignEngineOpts()
{
    EngineOptions eo;
    eo.threads = 4;
    eo.contentSeed = true; // identical launches share cache entries
    // Generous enough that no legitimate kernel trips (the big GNMT
    // GEMMs take ~100 ms on the reference core), tight enough that the
    // injected hang is reeled back in before the test drags.
    eo.taskTimeoutSec = 1.0;
    eo.maxTaskAttempts = 2;
    return eo;
}

} // namespace

TEST_F(CampaignFaultsTest, HungAndThrowingKernelsQuarantineAndReweight)
{
    GnmtScenario s = gnmtScenario();
    ASSERT_GT(s.w.launches.size(), 20u);
    ASSERT_LT(s.victimLaunches, s.w.launches.size());
    armVictims(s);

    GpuSimulator simulator(voltaV100());
    SimEngine engine(campaignEngineOpts());
    pka::core::CampaignPolicy policy;
    policy.minQuorum = 0.1;

    pka::core::FullSimResult fs = pka::core::fullSimulate(
        engine, simulator, s.w, nullptr, &policy);

    // Exactly the two poisoned kernels are quarantined; every launch of
    // either fails, everything else completes.
    EXPECT_EQ(fs.quarantinedKernels, 2u);
    EXPECT_EQ(fs.failedLaunches, s.victimLaunches);
    EXPECT_EQ(fs.perKernel.size(),
              s.w.launches.size() - s.victimLaunches);
    size_t completed = s.w.launches.size() - s.victimLaunches;
    double fraction = static_cast<double>(completed) /
                      static_cast<double>(s.w.launches.size());
    EXPECT_EQ(fs.quorumMet, fraction >= policy.minQuorum);
    ASSERT_EQ(fs.failures.size(), s.victimLaunches);
    for (const auto &f : fs.failures)
        EXPECT_TRUE(f.error.quarantined);

    // Reweighting: totals are the completed sums scaled by the survival
    // fraction, so they still estimate the whole app.
    double sum = 0.0;
    for (const auto &k : fs.perKernel)
        sum += static_cast<double>(k.cycles);
    double scale = static_cast<double>(s.w.launches.size()) /
                   static_cast<double>(completed);
    EXPECT_DOUBLE_EQ(fs.cycles, sum * scale);
    EXPECT_GT(fs.cycles, 0.0);

    // At least one hang was reeled back in by the wall-clock watchdog.
    EXPECT_GE(FaultInjector::instance().fireCount("worker.exec"), 2u);
}

TEST_F(CampaignFaultsTest, FailFastStopsTheCampaignNonSuccessfully)
{
    GnmtScenario s = gnmtScenario();
    armVictims(s);

    GpuSimulator simulator(voltaV100());
    SimEngine engine(campaignEngineOpts());
    pka::core::CampaignPolicy policy;
    policy.minQuorum = 0.0;
    policy.failFast = true;

    pka::core::FullSimResult fs = pka::core::fullSimulate(
        engine, simulator, s.w, nullptr, &policy);
    EXPECT_FALSE(fs.quorumMet); // fail-fast never reports success
    EXPECT_GT(fs.failedLaunches, 0u);
    ASSERT_FALSE(fs.failures.empty());
    EXPECT_THAT(fs.failures.front().error.str(), HasSubstr("kernel"));
}

TEST_F(CampaignFaultsTest, UnmatchedArmedFaultLeavesRunBitIdentical)
{
    GpuSimulator simulator(voltaV100());
    Workload w = smallWorkload(6);

    SimEngine clean(EngineOptions{.threads = 2});
    pka::core::FullSimResult base =
        pka::core::fullSimulate(clean, simulator, w);

    // Armed injector whose key matches no launch: the decision probe
    // runs on every task, but the results must stay bit-identical.
    std::vector<FaultSpec> specs;
    specs.push_back({.site = "worker.exec", .kind = FaultKind::kThrow,
                     .matchKey = 0xdeadbeefdeadbeefULL});
    FaultInjector::instance().configure(specs, faultSeed());

    SimEngine armed(EngineOptions{.threads = 2});
    pka::core::FullSimResult r =
        pka::core::fullSimulate(armed, simulator, w);
    EXPECT_EQ(r.cycles, base.cycles);
    EXPECT_EQ(r.threadInsts, base.threadInsts);
    EXPECT_EQ(r.dramUtilPct, base.dramUtilPct);
    EXPECT_EQ(FaultInjector::instance().fireCount("worker.exec"), 0u);
}

TEST_F(CampaignFaultsTest, QuarantineSurvivesResumeThroughTheJournal)
{
    TempDir dir;
    GpuSimulator simulator(voltaV100());
    Workload w = smallWorkload(6); // last launch is the distinct kernel
    uint64_t victim = launchContentHash(w.launches[0]);

    std::vector<FaultSpec> specs;
    specs.push_back({.site = "worker.exec", .kind = FaultKind::kThrow,
                     .matchKey = victim});
    FaultInjector::instance().configure(specs, faultSeed());

    pka::core::CampaignPolicy policy;
    policy.minQuorum = 0.0;
    pka::core::CampaignCheckpoint cp;
    cp.dir = dir.str();

    EngineOptions eo;
    eo.threads = 2;
    eo.maxTaskAttempts = 2;
    {
        SimEngine engine(eo);
        pka::core::FullSimResult first = pka::core::fullSimulate(
            engine, simulator, w, &cp, &policy);
        EXPECT_EQ(first.quarantinedKernels, 1u);
    }

    // Resume with a fresh engine and the injector DISARMED: the journal
    // replays the quarantine, so the poisoned kernel is still skipped
    // (no retry budget burned) and its launches fail with the persisted
    // verdict.
    FaultInjector::instance().reset();
    SimEngine engine(eo);
    cp.resume = true;
    pka::core::FullSimResult resumed = pka::core::fullSimulate(
        engine, simulator, w, &cp, &policy);
    EXPECT_GT(resumed.failedLaunches, 0u);
    EXPECT_TRUE(engine.isQuarantined(victim));
    for (const auto &f : resumed.failures)
        EXPECT_THAT(f.error.message, HasSubstr("previous run"));
}
