/**
 * @file
 * Operational-resilience tests: ENOSPC/permanent-write-failure
 * degradation to compute-through (store, journal, whole campaigns),
 * offline store scrubbing (`pka fsck` core — every corruption class the
 * fault injector can produce is detected, repaired, and rescans clean),
 * resource budgets (online disk eviction, engine memo-cache LRU trim),
 * and cache directories that turn read-only or vanish mid-campaign.
 * The invariant under test throughout: persistence failures cost
 * wall-clock and cache warmth, never results — aggregates stay
 * bit-identical to a healthy run, and nothing crashes.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "core/experiments.hh"
#include "silicon/gpu_spec.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "store/file_store.hh"
#include "store/fsck.hh"
#include "store/journal.hh"
#include "store/record.hh"
#include "workload/builder.hh"

namespace fs = std::filesystem;
using namespace pka::sim;
using namespace pka::store;
using namespace pka::workload;
using pka::common::FaultInjector;
using pka::silicon::voltaV100;

namespace
{

/** Self-cleaning unique temp directory for one test. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("pka_resilience_test_" + std::to_string(::getpid()) +
                 "_" + std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

/** Disarms the process-wide injector on scope exit, so one test's
 *  faults can never leak into the next. */
struct FaultGuard
{
    FaultGuard(const std::string &spec, uint64_t seed = 1)
    {
        std::string err;
        armed = FaultInjector::instance().configureFromString(spec, seed,
                                                              &err);
        EXPECT_TRUE(armed) << err;
    }
    ~FaultGuard() { FaultInjector::instance().reset(); }
    bool armed = false;
};

KernelSimKey
sampleKey(uint64_t salt = 0)
{
    KernelSimKey k;
    k.specHash = 0x1111222233334444ULL ^ salt;
    k.contentHash = 0x5555666677778888ULL + salt;
    k.workloadSeed = 42;
    k.seedSalt = 7 + salt;
    k.stopConfigKey = 0x9999aaaabbbbccccULL;
    k.maxThreadInstructions = 1'000'000;
    k.maxCycles = 2'000'000;
    k.ipcBucketCycles = 512;
    k.ipcWindowBuckets = 16;
    k.scheduler = 1;
    return k;
}

KernelSimResult
sampleResult()
{
    KernelSimResult r;
    r.cycles = 123456789;
    r.threadInstructions = 9.875e8;
    r.warpInstructions = 30864197;
    r.finishedCtas = 4096;
    r.inFlightCtas = 3;
    r.totalCtas = 4099;
    r.waveSize = 160;
    r.expectedWarpInstructions = 30900000;
    r.stoppedEarly = true;
    r.truncatedByBudget = false;
    r.dramUtilPct = 61.25;
    r.l2MissPct = 12.5;
    return r;
}

ProgramPtr
resProg(const std::string &name)
{
    return ProgramBuilder(name)
        .seg(InstrClass::GlobalLoad, 2)
        .seg(InstrClass::FpAlu, 8)
        .seg(InstrClass::GlobalStore, 1)
        .mem(2.0, 0.4, 0.6)
        .build();
}

/** A stream of distinct-shape launches (every key unique). */
Workload
distinctWorkload(size_t launches)
{
    Workload w;
    w.suite = "test";
    w.name = "resilience_distinct";
    w.seed = 42;
    ProgramPtr p = resProg("resilience_kernel");
    for (size_t i = 0; i < launches; ++i) {
        KernelDescriptor k;
        k.launchId = static_cast<uint32_t>(i);
        k.program = p;
        k.grid = {40 + static_cast<uint32_t>(i % 5) * 24, 1, 1};
        k.block = {128, 1, 1};
        k.iterations = 2 + static_cast<uint32_t>(i % 3);
        k.ctaWorkCv = 0.3;
        w.launches.push_back(std::move(k));
    }
    return w;
}

EngineOptions
storeOpts(const KernelResultStore *store, unsigned threads = 2)
{
    EngineOptions eo;
    eo.threads = threads;
    eo.memoize = true;
    eo.store = store;
    return eo;
}

/** Clean-store baseline aggregates for `w` (fresh engine, fresh dir). */
pka::core::FullSimResult
baselineRun(const Workload &w)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    SimEngine engine(storeOpts(&store));
    GpuSimulator simulator(voltaV100());
    return pka::core::fullSimulate(engine, simulator, w);
}

void
expectSameAggregates(const pka::core::FullSimResult &a,
                     const pka::core::FullSimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.threadInsts, b.threadInsts);
    EXPECT_EQ(a.ipc(), b.ipc());
    EXPECT_EQ(a.dramUtilPct, b.dramUtilPct);
}

/** Paths of every record file currently in a store root. */
std::vector<fs::path>
recordFiles(const fs::path &root)
{
    std::vector<fs::path> out;
    for (const auto &e :
         fs::recursive_directory_iterator(root / "objects"))
        if (e.is_regular_file() && e.path().extension() == ".pkr")
            out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// ENOSPC / permanent write failures: degrade, never fail.
// ---------------------------------------------------------------------

TEST(FaultInjectionDiskFull, SpecGrammarParsesEnospcKind)
{
    std::string err;
    FaultInjector &fi = FaultInjector::instance();
    EXPECT_TRUE(
        fi.configureFromString("store.write:enospc:1000", 1, &err))
        << err;
    fi.reset();
    // Bad kind still rejects cleanly.
    EXPECT_FALSE(fi.configureFromString("store.write:nospace", 1, &err));
    fi.reset();
}

TEST(FaultInjectionDiskFull, StoreDegradesToComputeThroughAndStaysUp)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    FaultGuard guard("store.write:enospc:1000");

    store.put(sampleKey(0), sampleResult());
    EXPECT_TRUE(store.degraded());
    StoreStatsSnapshot s = store.stats();
    EXPECT_EQ(s.degraded, 1u);
    EXPECT_EQ(s.puts, 0u);

    // Further puts are dropped (counted), not retried: a full disk must
    // not burn the retry budget on every launch.
    store.put(sampleKey(1), sampleResult());
    store.put(sampleKey(2), sampleResult());
    s = store.stats();
    EXPECT_GE(s.putsSkippedDegraded, 2u);
    EXPECT_EQ(s.retryExhausted, 0u);

    // Reads keep working in compute-through mode.
    KernelSimResult out;
    EXPECT_EQ(store.get(sampleKey(0), &out), Lookup::kMiss);
    EXPECT_EQ(store.recordCount(), 0u);
}

TEST(FaultInjectionDiskFull, CampaignSurvivesEnospcBitIdentically)
{
    Workload w = distinctWorkload(24);
    pka::core::FullSimResult healthy = baselineRun(w);

    TempDir dir;
    KernelResultStore store(dir.str());
    FaultGuard guard("store.write:enospc:1000");
    SimEngine engine(storeOpts(&store));
    GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult starved =
        pka::core::fullSimulate(engine, simulator, w);

    // The campaign completed every launch with the store disabled, and
    // persistence failure never leaked into the numbers.
    EXPECT_TRUE(store.degraded());
    EXPECT_EQ(starved.cacheMisses, w.launches.size());
    expectSameAggregates(healthy, starved);
    EXPECT_EQ(store.recordCount(), 0u);
}

TEST(FaultInjectionDiskFull, JournalLosesCheckpointsNotTheCampaign)
{
    TempDir dir;
    fs::path jdir = dir.path() / "sessions" / "s1";
    fs::create_directories(jdir);
    std::string jpath = (jdir / "journal-1.pkj").string();

    FaultGuard guard("journal.append:enospc:1000");
    CampaignJournal j(jpath, 0xabcdefULL, 8, false);
    j.markDone({0, 1, 2});

    // The append path degraded to a no-op, but the in-memory ledger (and
    // with it the running campaign) is untouched.
    EXPECT_FALSE(j.checkpointing());
    EXPECT_EQ(j.completedCount(), 3u);
    EXPECT_TRUE(j.isDone(0));
    j.markQuarantined(0x1234); // must not crash after degrade
}

// ---------------------------------------------------------------------
// Offline scrubbing: the `pka fsck` core.
// ---------------------------------------------------------------------

TEST(Fsck, CleanStoreScansClean)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    for (uint64_t i = 0; i < 5; ++i)
        store.put(sampleKey(i), sampleResult());

    FsckReport rep = fsckStore(dir.str(), {});
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.recordsScanned, 5u);
    EXPECT_EQ(rep.recordsValid, 5u);
    EXPECT_EQ(rep.recordBytes, 5 * kRecordSize);
}

TEST(Fsck, QuarantinesBitRotAndTruncationNeverDeletes)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    for (uint64_t i = 0; i < 4; ++i)
        store.put(sampleKey(i), sampleResult());

    std::vector<fs::path> files = recordFiles(dir.path());
    ASSERT_EQ(files.size(), 4u);
    { // Bit rot in the payload of one record.
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(kRecordSize / 2));
        f.put('\x5a');
    }
    fs::resize_file(files[1], kRecordSize - 7); // torn write

    // Scan-only reports the damage and touches nothing.
    FsckReport scan = fsckStore(dir.str(), {});
    EXPECT_FALSE(scan.clean());
    EXPECT_EQ(scan.recordsCorrupt, 2u);
    EXPECT_EQ(scan.recordsValid, 2u);
    EXPECT_EQ(scan.quarantinedFiles, 0u);
    EXPECT_TRUE(fs::exists(files[0]));

    // Repair quarantines (preserving bytes for post-mortem) and the
    // rescan comes back clean.
    FsckOptions repair;
    repair.repair = true;
    FsckReport rep = fsckStore(dir.str(), repair);
    EXPECT_EQ(rep.quarantinedFiles, 2u);
    EXPECT_FALSE(fs::exists(files[0]));
    EXPECT_FALSE(fs::exists(files[1]));
    uint64_t parked = 0;
    for (const auto &e :
         fs::directory_iterator(dir.path() / "quarantine"))
        parked += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(parked, 2u);
    EXPECT_TRUE(fsckStore(dir.str(), {}).clean());
    EXPECT_EQ(store.recordCount(), 2u);
}

TEST(Fsck, RenamesMisnamedRecordBackIntoReach)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    KernelSimKey key = sampleKey(9);
    store.put(key, sampleResult());

    // Displace the (valid) record under a name no lookup will compute.
    std::vector<fs::path> files = recordFiles(dir.path());
    ASSERT_EQ(files.size(), 1u);
    fs::path strayDir = dir.path() / "objects" / "00";
    fs::create_directories(strayDir);
    fs::path stray = strayDir / "00deadbeef00cafe.pkr";
    fs::rename(files[0], stray);

    KernelSimResult out;
    EXPECT_EQ(store.get(key, &out), Lookup::kMiss); // unreachable

    FsckReport scan = fsckStore(dir.str(), {});
    EXPECT_EQ(scan.recordsMisnamed, 1u);
    EXPECT_EQ(scan.recordsRenamed, 0u);

    FsckOptions repair;
    repair.repair = true;
    FsckReport rep = fsckStore(dir.str(), repair);
    EXPECT_EQ(rep.recordsRenamed, 1u);
    EXPECT_EQ(rep.quarantinedFiles, 0u);
    EXPECT_TRUE(fsckStore(dir.str(), {}).clean());

    // The record is a hit again — repair recovered real cache value.
    EXPECT_EQ(store.get(key, &out), Lookup::kHit);
    EXPECT_EQ(out.cycles, sampleResult().cycles);
}

TEST(Fsck, SweepsStagingOrphansAndTruncatesTornJournalTail)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    store.put(sampleKey(), sampleResult());

    // A killed writer's staging debris.
    { std::ofstream(dir.path() / "tmp" / "orphan-123.tmp") << "half"; }

    // A journal whose tail was torn by a crash mid-append.
    fs::path jdir = dir.path() / "sessions" / "sess";
    fs::create_directories(jdir);
    fs::path jpath = jdir / "journal-7.pkj";
    {
        CampaignJournal j(jpath.string(), 0x77ULL, 8, false);
        j.markDone({0, 1});
    }
    uint64_t goodSize = fs::file_size(jpath);
    { std::ofstream(jpath, std::ios::app) << "done,2"; } // no newline

    FsckReport scan = fsckStore(dir.str(), {});
    EXPECT_EQ(scan.tmpOrphans, 1u);
    EXPECT_EQ(scan.journalsScanned, 1u);
    EXPECT_EQ(scan.journalsTorn, 1u);
    EXPECT_EQ(scan.journalsTruncated, 0u);

    FsckOptions repair;
    repair.repair = true;
    FsckReport rep = fsckStore(dir.str(), repair);
    EXPECT_EQ(rep.journalsTruncated, 1u);
    EXPECT_EQ(fs::file_size(jpath), goodSize);
    EXPECT_TRUE(fsckStore(dir.str(), {}).clean());

    // The truncated journal resumes with exactly its trusted prefix.
    CampaignJournal resumed(jpath.string(), 0x77ULL, 8, true);
    EXPECT_EQ(resumed.resumedCount(), 2u);
    EXPECT_TRUE(resumed.isDone(0));
    EXPECT_TRUE(resumed.isDone(1));
    EXPECT_FALSE(resumed.isDone(2));
}

TEST(Fsck, JournalWithDestroyedHeaderIsQuarantined)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    fs::path jdir = dir.path() / "sessions" / "sess";
    fs::create_directories(jdir);
    fs::path jpath = jdir / "journal-9.pkj";
    { std::ofstream(jpath) << "this was never a journal\n"; }

    FsckReport scan = fsckStore(dir.str(), {});
    EXPECT_EQ(scan.journalsBad, 1u);

    FsckOptions repair;
    repair.repair = true;
    FsckReport rep = fsckStore(dir.str(), repair);
    EXPECT_EQ(rep.quarantinedFiles, 1u);
    EXPECT_FALSE(fs::exists(jpath));
    EXPECT_TRUE(fsckStore(dir.str(), {}).clean());
}

TEST(Fsck, CompactionEvictsOldestFirstDownToBudget)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    for (uint64_t i = 0; i < 6; ++i)
        store.put(sampleKey(i), sampleResult());

    // Age the records deterministically: files[0] oldest.
    std::vector<fs::path> files = recordFiles(dir.path());
    ASSERT_EQ(files.size(), 6u);
    auto now = fs::last_write_time(files[0]);
    for (size_t i = 0; i < files.size(); ++i)
        fs::last_write_time(files[i],
                            now - std::chrono::hours(files.size() - i));

    FsckOptions opts;
    opts.budgetBytes = 2 * kRecordSize;
    FsckReport rep = fsckStore(dir.str(), opts);
    EXPECT_EQ(rep.evictedRecords, 4u);
    EXPECT_EQ(rep.evictedBytes, 4 * kRecordSize);
    EXPECT_LE(store.recordBytes(), opts.budgetBytes);

    // The two *newest* records are the survivors.
    std::vector<fs::path> left = recordFiles(dir.path());
    ASSERT_EQ(left.size(), 2u);
    for (const fs::path &p : left)
        EXPECT_TRUE(p == files[4] || p == files[5]) << p;
}

// ---------------------------------------------------------------------
// Online resource budgets: disk and memo-cache bounds.
// ---------------------------------------------------------------------

TEST(StoreBudget, OnlinePutsEvictOldestAndNeverDegrade)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    store.setDiskBudgetBytes(4 * kRecordSize);
    for (uint64_t i = 0; i < 12; ++i)
        store.put(sampleKey(i), sampleResult());

    StoreStatsSnapshot s = store.stats();
    EXPECT_EQ(s.puts, 12u);
    EXPECT_EQ(s.putFailures, 0u);
    EXPECT_FALSE(store.degraded());
    EXPECT_GT(s.evictedRecords, 0u);
    EXPECT_EQ(s.evictedBytes, s.evictedRecords * kRecordSize);
    // Eviction runs in bursts down to 90% of the budget, so the tree may
    // transiently sit anywhere under the budget — never above it.
    EXPECT_LE(store.recordBytes(), 4 * kRecordSize);
    EXPECT_EQ(store.recordCount() + s.evictedRecords, 12u);
}

TEST(MemoBudget, EngineEvictsLruWithBitIdenticalResults)
{
    Workload w = distinctWorkload(48);
    pka::core::FullSimResult unbounded = baselineRun(w);

    EngineOptions eo;
    eo.threads = 2;
    eo.memoize = true;
    eo.memoBudgetBytes = 8192; // far below 48 distinct entries
    SimEngine engine(eo);
    GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult bounded =
        pka::core::fullSimulate(engine, simulator, w);

    EXPECT_GT(engine.memoEvictions(), 0u);
    expectSameAggregates(unbounded, bounded);

    // A second pass re-pays evicted entries (wall-clock, not results).
    pka::core::FullSimResult again =
        pka::core::fullSimulate(engine, simulator, w);
    expectSameAggregates(unbounded, again);
}

// ---------------------------------------------------------------------
// Cache directories that go bad mid-campaign.
// ---------------------------------------------------------------------

TEST(CacheDirResilience, ObjectsTreeReplacedByFileDegradesBitIdentically)
{
    Workload w = distinctWorkload(16);
    pka::core::FullSimResult healthy = baselineRun(w);

    TempDir dir;
    KernelResultStore store(dir.str());
    // Sabotage after open: every path component under objects/ now hits
    // ENOTDIR — the permanent-errno class, exactly what a read-only or
    // remounted cache volume produces (chmod is no barrier under root,
    // which is how CI runs, so the test forces the errno directly).
    fs::remove_all(dir.path() / "objects");
    { std::ofstream(dir.path() / "objects") << "not a directory"; }

    SimEngine engine(storeOpts(&store));
    GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult degradedRun =
        pka::core::fullSimulate(engine, simulator, w);

    EXPECT_TRUE(store.degraded());
    EXPECT_GT(store.stats().putsSkippedDegraded, 0u);
    expectSameAggregates(healthy, degradedRun);
}

TEST(CacheDirResilience, ReadOnlyCacheDirDegradesToComputeThrough)
{
    if (::geteuid() == 0)
        GTEST_SKIP() << "root bypasses permission bits; the ENOTDIR "
                        "variant covers the permanent-errno path";

    Workload w = distinctWorkload(8);
    pka::core::FullSimResult healthy = baselineRun(w);

    TempDir dir;
    KernelResultStore store(dir.str());
    ::chmod((dir.path() / "objects").string().c_str(), 0555);
    ::chmod((dir.path() / "tmp").string().c_str(), 0555);
    ::chmod(dir.str().c_str(), 0555);

    SimEngine engine(storeOpts(&store));
    GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult ro =
        pka::core::fullSimulate(engine, simulator, w);
    expectSameAggregates(healthy, ro);
    EXPECT_TRUE(store.degraded());

    ::chmod(dir.str().c_str(), 0755); // let TempDir clean up
    ::chmod((dir.path() / "objects").string().c_str(), 0755);
    ::chmod((dir.path() / "tmp").string().c_str(), 0755);
}

TEST(CacheDirResilience, CacheDirVanishingMidCampaignIsBitIdentical)
{
    Workload w = distinctWorkload(16);
    pka::core::FullSimResult healthy = baselineRun(w);

    TempDir dir;
    fs::path root = dir.path() / "cache";
    KernelResultStore store(root.string());
    // Warm a few records, then yank the whole directory out from under
    // the open store — an operator rm -rf, an unmounted volume.
    for (uint64_t i = 0; i < 4; ++i)
        store.put(sampleKey(100 + i), sampleResult());
    fs::remove_all(root);

    SimEngine engine(storeOpts(&store));
    GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult after =
        pka::core::fullSimulate(engine, simulator, w);

    // Whether the store re-created the tree or degraded, the campaign
    // finished every launch and the numbers match a healthy run.
    expectSameAggregates(healthy, after);
    EXPECT_EQ(after.cacheMisses + after.storeHits + after.cacheHits,
              w.launches.size());
}

TEST(CacheDirResilience, WarmRerunAfterSabotageRecomputesBitIdentically)
{
    Workload w = distinctWorkload(12);

    TempDir dir;
    pka::core::FullSimResult cold;
    {
        KernelResultStore store(dir.str());
        SimEngine engine(storeOpts(&store));
        GpuSimulator simulator(voltaV100());
        cold = pka::core::fullSimulate(engine, simulator, w);
        EXPECT_EQ(store.recordCount(), w.launches.size());
    }

    // The "resume" run finds its cache gone bad: every shard directory
    // under objects/ is now a regular file, so reads and writes both
    // hit ENOTDIR while the store itself still opens.
    std::vector<fs::path> shards;
    for (const auto &e : fs::directory_iterator(dir.path() / "objects"))
        shards.push_back(e.path());
    for (const fs::path &shard : shards) {
        fs::remove_all(shard);
        std::ofstream(shard) << "gone";
    }

    KernelResultStore store(dir.str());
    SimEngine engine(storeOpts(&store));
    GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult warm =
        pka::core::fullSimulate(engine, simulator, w);

    // Zero store hits — everything recomputed — and still bit-identical.
    EXPECT_EQ(warm.storeHits, 0u);
    EXPECT_EQ(warm.cacheMisses, w.launches.size());
    expectSameAggregates(cold, warm);
}
