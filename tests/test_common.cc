/**
 * @file
 * Unit tests for the common substrate: formatting, RNG, rolling-window
 * statistics, summary statistics and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace pka::common;

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Strfmt, LongOutput)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123, 7), b(123, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, StreamsDiffer)
{
    Rng a(123, 1), b(123, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU32() == b.nextU32();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInRange)
{
    Rng r(10);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng r(11);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++hits[r.uniformInt(8)];
    for (int h : hits)
        EXPECT_GT(h, 300); // ~500 expected
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng r(12);
    double sum = 0, sumsq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal();
        sum += x;
        sumsq += x * x;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, JitterHasUnitMean)
{
    Rng r(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.jitter(0.2);
    EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ForKeyIsDeterministicAndKeySensitive)
{
    Rng a = Rng::forKey(1, 2, 3);
    Rng b = Rng::forKey(1, 2, 3);
    Rng c = Rng::forKey(1, 2, 4);
    EXPECT_EQ(a.nextU64(), b.nextU64());
    EXPECT_NE(a.nextU64(), c.nextU64());
}

TEST(RollingWindow, MeanAndStdOfConstantSignal)
{
    RollingWindow w(10);
    for (int i = 0; i < 25; ++i)
        w.push(3.0);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
    EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
    EXPECT_TRUE(w.full());
}

TEST(RollingWindow, EvictsOldSamples)
{
    RollingWindow w(4);
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0})
        w.push(x);
    // Window holds {3,4,5,6}.
    EXPECT_DOUBLE_EQ(w.mean(), 4.5);
}

TEST(RollingWindow, PartialWindowStats)
{
    RollingWindow w(100);
    w.push(2.0);
    w.push(4.0);
    EXPECT_FALSE(w.full());
    EXPECT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
    EXPECT_DOUBLE_EQ(w.stddev(), 1.0);
}

TEST(RollingWindow, CoefficientOfVariation)
{
    RollingWindow w(4);
    for (double x : {10.0, 10.0, 10.0, 10.0})
        w.push(x);
    EXPECT_DOUBLE_EQ(w.coefficientOfVariation(), 0.0);
    w.push(20.0);
    EXPECT_GT(w.coefficientOfVariation(), 0.0);
}

TEST(RollingWindow, ClearResets)
{
    RollingWindow w(4);
    w.push(5.0);
    w.clear();
    EXPECT_EQ(w.size(), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(RollingWindow, MatchesBatchStatsOnRandomData)
{
    Rng r(77);
    RollingWindow w(50);
    std::vector<double> last;
    for (int i = 0; i < 500; ++i) {
        double x = r.uniform(0, 100);
        w.push(x);
        last.push_back(x);
        if (last.size() > 50)
            last.erase(last.begin());
    }
    EXPECT_NEAR(w.mean(), mean(last), 1e-9);
    EXPECT_NEAR(w.stddev(), stddev(last), 1e-9);
}

TEST(RollingWindow, ZeroCapacityPanics)
{
    EXPECT_DEATH(RollingWindow(0), "capacity");
}

TEST(Stats, MeanAndStd)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({1, 4, 16}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries clamp to the floor instead of exploding.
    EXPECT_GT(geomean({0.0, 1.0}), 0.0);
}

TEST(Stats, PctError)
{
    EXPECT_DOUBLE_EQ(pctError(110, 100), 10.0);
    EXPECT_DOUBLE_EQ(pctError(90, 100), 10.0);
    EXPECT_DOUBLE_EQ(pctError(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(pctError(5, 0), 100.0);
}

TEST(Stats, SpeedupAndMedian)
{
    EXPECT_DOUBLE_EQ(speedup(100, 25), 4.0);
    EXPECT_TRUE(std::isinf(speedup(10, 0)));
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MeanAbs)
{
    EXPECT_DOUBLE_EQ(meanAbs({-2, 2, -4, 4}), 3.0);
}

TEST(Table, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.row().cell("a").num(1.5);
    t.row().cell("longer").intCell(10);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    TextTable t({"a", "b"});
    t.row().cell("x").cell("y");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, TooManyCellsPanics)
{
    TextTable t({"only"});
    t.row().cell("one");
    EXPECT_DEATH(t.cell("two"), "more cells");
}

TEST(Table, CellBeforeRowPanics)
{
    TextTable t({"c"});
    EXPECT_DEATH(t.cell("x"), "row\\(\\)");
}

TEST(HumanTime, Scales)
{
    EXPECT_EQ(humanTime(0.5e-4), "50.0 us");
    EXPECT_EQ(humanTime(0.5), "500.0 ms");
    EXPECT_EQ(humanTime(30), "30.0 s");
    EXPECT_EQ(humanTime(120), "2.0 m");
    EXPECT_EQ(humanTime(7200), "2.0 h");
    EXPECT_EQ(humanTime(86400 * 2), "2.0 d");
    EXPECT_EQ(humanTime(86400 * 365 * 3), "3.0 y");
    EXPECT_NE(humanTime(86400.0 * 365 * 250).find("centuries"),
              std::string::npos);
}

TEST(HumanCount, Scales)
{
    EXPECT_EQ(humanCount(10), "10.0");
    EXPECT_EQ(humanCount(1500), "1.5k");
    EXPECT_EQ(humanCount(2.5e6), "2.5M");
    EXPECT_EQ(humanCount(3e9), "3.0B");
}

/** Property sweep: rolling window matches batch stats at any capacity. */
class RollingWindowCapacity : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RollingWindowCapacity, IncrementalEqualsBatch)
{
    size_t cap = GetParam();
    Rng r(cap);
    RollingWindow w(cap);
    std::vector<double> tail;
    for (int i = 0; i < 300; ++i) {
        double x = r.normal(50, 10);
        w.push(x);
        tail.push_back(x);
        if (tail.size() > cap)
            tail.erase(tail.begin());
        EXPECT_NEAR(w.mean(), mean(tail), 1e-8);
        EXPECT_NEAR(w.stddev(), stddev(tail), 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RollingWindowCapacity,
                         ::testing::Values(1, 2, 3, 7, 32, 100, 257));
