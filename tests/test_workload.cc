/**
 * @file
 * Workload-model tests: IR arithmetic, builders, archetypes, suite
 * structure (the paper's launch-count shapes), determinism and the
 * profiler-sensitivity quirk.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "workload/archetypes.hh"
#include "workload/builder.hh"
#include "workload/detail.hh"
#include "workload/suites.hh"

using namespace pka::workload;
using pka::common::Rng;

namespace
{

ProgramPtr
tinyProgram(uint32_t alu = 4, uint32_t loads = 1)
{
    return ProgramBuilder("tiny")
        .seg(InstrClass::GlobalLoad, loads)
        .seg(InstrClass::IntAlu, alu)
        .seg(InstrClass::GlobalStore, 1)
        .build();
}

} // namespace

TEST(Dim3, Total)
{
    EXPECT_EQ((Dim3{4, 2, 3}).total(), 24u);
    EXPECT_EQ((Dim3{1, 1, 1}).total(), 1u);
}

TEST(Program, InstrsPerIteration)
{
    auto p = tinyProgram(4, 2);
    EXPECT_EQ(p->instrsPerIteration(), 7u);
    EXPECT_EQ(p->classInstrsPerIteration(InstrClass::IntAlu), 4u);
    EXPECT_EQ(p->classInstrsPerIteration(InstrClass::GlobalLoad), 2u);
    EXPECT_EQ(p->classInstrsPerIteration(InstrClass::Sfu), 0u);
}

TEST(Program, InstrClassNames)
{
    for (size_t c = 0; c < kNumInstrClasses; ++c) {
        const char *n = instrClassName(static_cast<InstrClass>(c));
        EXPECT_NE(n, nullptr);
        EXPECT_GT(std::string(n).size(), 0u);
    }
}

TEST(Program, GlobalMemClassification)
{
    EXPECT_TRUE(isGlobalMemClass(InstrClass::GlobalLoad));
    EXPECT_TRUE(isGlobalMemClass(InstrClass::GlobalAtomic));
    EXPECT_TRUE(isGlobalMemClass(InstrClass::LocalStore));
    EXPECT_FALSE(isGlobalMemClass(InstrClass::SharedLoad));
    EXPECT_FALSE(isGlobalMemClass(InstrClass::IntAlu));
}

TEST(KernelDescriptor, CountArithmetic)
{
    KernelDescriptor k;
    k.program = tinyProgram();
    k.grid = {10, 1, 1};
    k.block = {96, 1, 1};
    k.iterations = 5;
    EXPECT_EQ(k.numCtas(), 10u);
    EXPECT_EQ(k.threadsPerCta(), 96u);
    EXPECT_EQ(k.warpsPerCta(), 3u);
    EXPECT_EQ(k.totalThreads(), 960u);
    EXPECT_EQ(k.totalThreadInstructions(), 960u * 5 * 6);
    EXPECT_EQ(k.totalWarpInstructions(), 30u * 5 * 6);
}

TEST(KernelDescriptor, WarpRoundUp)
{
    KernelDescriptor k;
    k.program = tinyProgram();
    k.grid = {1, 1, 1};
    k.block = {33, 1, 1};
    EXPECT_EQ(k.warpsPerCta(), 2u);
}

TEST(ProgramBuilder, RejectsEmptyBody)
{
    ProgramBuilder b("empty");
    EXPECT_DEATH(b.build(), "empty");
}

TEST(ProgramBuilder, DropsZeroCountSegments)
{
    auto p = ProgramBuilder("z")
                 .seg(InstrClass::IntAlu, 0)
                 .seg(InstrClass::FpAlu, 3)
                 .build();
    EXPECT_EQ(p->body.size(), 1u);
}

TEST(ProgramBuilder, ValidatesMemParameters)
{
    ProgramBuilder b("m");
    EXPECT_DEATH(b.mem(0.5, 0.5, 0.5), "sectors");
    EXPECT_DEATH(b.mem(40.0, 0.5, 0.5), "sectors");
}

TEST(ProgramBuilder, ValidatesDivergence)
{
    ProgramBuilder b("d");
    EXPECT_DEATH(b.divergence(0.0), "divergence");
    EXPECT_DEATH(b.divergence(1.5), "divergence");
}

TEST(WorkloadBuilder, AssignsChronologicalIds)
{
    WorkloadBuilder b("s", "n", 1);
    auto p = tinyProgram();
    for (int i = 0; i < 5; ++i)
        b.launch(p, {1, 1, 1}, {32, 1, 1});
    Workload w = b.build();
    for (uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(w.launches[i].launchId, i);
}

TEST(WorkloadBuilder, RejectsOversizedBlock)
{
    WorkloadBuilder b("s", "n", 1);
    EXPECT_DEATH(b.launch(tinyProgram(), {1, 1, 1}, {2048, 1, 1}),
                 "1024");
}

TEST(WorkloadBuilder, RejectsEmptyGrid)
{
    WorkloadBuilder b("s", "n", 1);
    EXPECT_DEATH(b.launch(tinyProgram(), {0, 1, 1}, {32, 1, 1}),
                 "non-empty");
}

TEST(WorkloadBuilder, RejectsEmptyWorkload)
{
    WorkloadBuilder b("s", "n", 1);
    EXPECT_DEATH(b.build(), "no launches");
}

TEST(Workload, DistinctPrograms)
{
    WorkloadBuilder b("s", "n", 1);
    auto p1 = tinyProgram(), p2 = tinyProgram();
    b.launch(p1, {1, 1, 1}, {32, 1, 1});
    b.launch(p1, {1, 1, 1}, {32, 1, 1});
    b.launch(p2, {1, 1, 1}, {32, 1, 1});
    EXPECT_EQ(b.build().distinctPrograms(), 2u);
}

TEST(Archetypes, AllBuildValidPrograms)
{
    Rng rng(42);
    std::vector<ProgramPtr> ps = {
        pka::workload::archetypes::compute("c", rng),
        pka::workload::archetypes::gemmTile("g", rng, false),
        pka::workload::archetypes::gemmTile("gt", rng, true),
        pka::workload::archetypes::convTile("cv", rng, false),
        pka::workload::archetypes::elementwise("e", rng),
        pka::workload::archetypes::reduction("r", rng),
        pka::workload::archetypes::stencil("st", rng),
        pka::workload::archetypes::graphTraversal("gr", rng),
        pka::workload::archetypes::sparse("sp", rng),
        pka::workload::archetypes::atomicHistogram("h", rng),
        pka::workload::archetypes::rnnCell("rn", rng, false),
        pka::workload::archetypes::dataMovement("dm", rng),
    };
    for (const auto &p : ps) {
        EXPECT_FALSE(p->body.empty()) << p->name;
        EXPECT_GE(p->sectorsPerAccess, 1.0) << p->name;
        EXPECT_LE(p->sectorsPerAccess, 32.0) << p->name;
        EXPECT_GT(p->divergenceEff, 0.0) << p->name;
        EXPECT_LE(p->divergenceEff, 1.0) << p->name;
        EXPECT_GT(p->instrsPerIteration(), 0u) << p->name;
    }
}

TEST(Archetypes, TensorVariantUsesTensorCores)
{
    Rng rng(1);
    auto tc = pka::workload::archetypes::gemmTile("t", rng, true);
    auto cc = pka::workload::archetypes::gemmTile("c", rng, false);
    EXPECT_GT(tc->classInstrsPerIteration(InstrClass::Tensor), 0u);
    EXPECT_EQ(cc->classInstrsPerIteration(InstrClass::Tensor), 0u);
}

TEST(Suites, RegistryHas147)
{
    EXPECT_EQ(allWorkloads().size(), 147u);
}

TEST(Suites, SuiteSizesMatchPaper)
{
    std::unordered_map<std::string, int> counts;
    for (const auto &w : allWorkloads())
        ++counts[w.suite];
    EXPECT_EQ(counts["rodinia"], 28);
    EXPECT_EQ(counts["parboil"], 8);
    EXPECT_EQ(counts["polybench"], 15);
    EXPECT_EQ(counts["cutlass"], 20);
    EXPECT_EQ(counts["deepbench"], 69);
    EXPECT_EQ(counts["mlperf"], 7);
}

TEST(Suites, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Suites, DeterministicAcrossBuilds)
{
    auto a = allWorkloads();
    auto b = allWorkloads();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].seed, b[i].seed);
        ASSERT_EQ(a[i].launches.size(), b[i].launches.size()) << a[i].name;
        EXPECT_EQ(a[i].totalWarpInstructions(),
                  b[i].totalWarpInstructions())
            << a[i].name;
    }
}

TEST(Suites, PaperLaunchStructures)
{
    auto get = [](const std::string &n) {
        auto w = buildWorkload(n);
        EXPECT_TRUE(w.has_value()) << n;
        return *w;
    };
    // gaussian on a 208x208 matrix: 2 kernels x 207 rounds.
    EXPECT_EQ(get("gauss_208").launches.size(), 414u);
    // bfs65536: 20 near-uniform launches (Table 3: one group of 20).
    EXPECT_EQ(get("bfs65536").launches.size(), 20u);
    // Parboil histo: 4 kernels x 20 iterations.
    EXPECT_EQ(get("histo").launches.size(), 80u);
    // Parboil cutcp: launch counts 2/3/6 across 3 kernels.
    EXPECT_EQ(get("cutcp").launches.size(), 11u);
    // fdtd2d: 3 kernels x 500 steps.
    EXPECT_EQ(get("fdtd2d").launches.size(), 1500u);
    // gramschmidt: 3 kernels x 2137 column steps = 6411.
    EXPECT_EQ(get("gramschmidt").launches.size(), 6411u);
    // CUTLASS: 7 repetitions of one tuned kernel.
    EXPECT_EQ(get("sgemm_2560x128x2560").launches.size(), 7u);
    EXPECT_EQ(get("sgemm_2560x128x2560").distinctPrograms(), 1u);
}

TEST(Suites, MlperfScalesWithOption)
{
    GenOptions small;
    small.mlperfScale = 0.005;
    GenOptions large;
    large.mlperfScale = 0.02;
    auto ws = buildWorkload("ssd_training", small);
    auto wl = buildWorkload("ssd_training", large);
    ASSERT_TRUE(ws && wl);
    EXPECT_LT(ws->launches.size(), wl->launches.size());
    EXPECT_DOUBLE_EQ(ws->scale, 0.005);
}

TEST(Suites, MlperfCarriesTensorDims)
{
    auto w = buildWorkload("bert_inference", GenOptions{.mlperfScale = 0.002});
    ASSERT_TRUE(w);
    size_t with_dims = 0;
    for (const auto &k : w->launches)
        with_dims += !k.tensorDims.empty();
    EXPECT_EQ(with_dims, w->launches.size());
}

TEST(Suites, ClassicWorkloadsHaveNoTensorDims)
{
    auto w = buildWorkload("histo");
    ASSERT_TRUE(w);
    for (const auto &k : w->launches)
        EXPECT_TRUE(k.tensorDims.empty());
}

TEST(Suites, ProfilerSensitivity)
{
    EXPECT_TRUE(isProfilerSensitive("myocyte"));
    EXPECT_TRUE(isProfilerSensitive("conv_train_in3"));
    EXPECT_FALSE(isProfilerSensitive("conv_train_tc_in3"));
    EXPECT_FALSE(isProfilerSensitive("gauss_208"));
}

TEST(Suites, ProfiledVariantChangesSensitiveCounts)
{
    GenOptions plain, prof;
    prof.underProfiler = true;
    auto t = buildWorkload("myocyte", plain);
    auto p = buildWorkload("myocyte", prof);
    ASSERT_TRUE(t && p);
    EXPECT_NE(t->launches.size(), p->launches.size());

    auto t2 = buildWorkload("gauss_208", plain);
    auto p2 = buildWorkload("gauss_208", prof);
    EXPECT_EQ(t2->launches.size(), p2->launches.size());
}

TEST(Suites, UnknownNameReturnsNullopt)
{
    EXPECT_FALSE(buildWorkload("not_a_workload").has_value());
}

TEST(Suites, ResnetUsesFigure4KernelNames)
{
    auto w = buildWorkload("resnet50_64b", GenOptions{.mlperfScale = 0.002});
    ASSERT_TRUE(w);
    std::set<std::string> names;
    for (const auto &k : w->launches)
        names.insert(k.program->name);
    for (const char *expect :
         {"sgemm", "winograd_big", "genWinograd", "implicit_con",
          "tiny_relu_1", "bn_fw_inf", "MaxPool2D", "somax_fw",
          "SimpleBinary", "RowwiseBinary", "splitKreduce", "gemv2N"})
        EXPECT_TRUE(names.count(expect)) << expect;
}

TEST(Detail, StableHashIsStable)
{
    EXPECT_EQ(detail::stableHash("abc"), detail::stableHash("abc"));
    EXPECT_NE(detail::stableHash("abc"), detail::stableHash("abd"));
    // Regression-pin the FNV-1a value so it never drifts across builds.
    EXPECT_EQ(detail::stableHash(""), 1469598103934665603ULL);
}

/** Every workload must be launchable: positive sizes, valid programs. */
class AllWorkloadsValid : public ::testing::TestWithParam<int>
{
};

TEST_P(AllWorkloadsValid, StructurallySound)
{
    static auto all = allWorkloads();
    const Workload &w = all[GetParam()];
    EXPECT_FALSE(w.launches.empty());
    for (const auto &k : w.launches) {
        ASSERT_NE(k.program, nullptr);
        EXPECT_GT(k.numCtas(), 0u);
        EXPECT_GT(k.threadsPerCta(), 0u);
        EXPECT_LE(k.threadsPerCta(), 1024u);
        EXPECT_GE(k.iterations, 1u);
        EXPECT_GE(k.ctaWorkCv, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllWorkloadsValid,
                         ::testing::Range(0, 147));
