/**
 * @file
 * Cross-module smoke tests: registry size, silicon execution, and a basic
 * simulator run. Deeper per-module tests live in the other test files.
 */

#include <gtest/gtest.h>

#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

using namespace pka;

TEST(Registry, Has147Workloads)
{
    auto all = workload::allWorkloads();
    EXPECT_EQ(all.size(), 147u);
    for (const auto &w : all) {
        EXPECT_FALSE(w.launches.empty()) << w.name;
        EXPECT_FALSE(w.name.empty());
    }
}

TEST(Silicon, RunsBackprop)
{
    auto w = workload::buildWorkload("backprop");
    ASSERT_TRUE(w.has_value());
    silicon::SiliconGpu gpu(silicon::voltaV100());
    auto app = gpu.run(*w);
    EXPECT_GT(app.totalCycles, 0u);
    EXPECT_EQ(app.launches.size(), w->launches.size());
}

TEST(Simulator, RunsSingleKernel)
{
    auto w = workload::buildWorkload("nn");
    ASSERT_TRUE(w.has_value());
    sim::GpuSimulator simulator(silicon::voltaV100());
    auto r = simulator.simulateKernel(w->launches[0], w->seed);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.finishedCtas, r.totalCtas);
    EXPECT_GT(r.threadInstructions, 0.0);
}
