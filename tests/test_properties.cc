/**
 * @file
 * Cross-cutting property sweeps over real registry workloads: selection
 * partitions, simulation conservation laws, silicon monotonicity and
 * trace-replay equivalence must hold for every workload shape the
 * generators produce, not just hand-picked cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "core/pks.hh"
#include "ml/kmeans.hh"
#include "ml/pca.hh"
#include "ml/scaler.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "workload/suites.hh"

using namespace pka;

namespace
{

const std::vector<std::string> &
sampleNames()
{
    // A spread across suites, structures and irregularity.
    static const std::vector<std::string> names = {
        "b+tree",     "bfs1MW",       "gauss_208",  "gauss_s16",
        "hstort_r",   "kmeans_28k",   "lud_256",    "nw",
        "srad_v2",    "cutcp",        "histo",      "spmv",
        "3dconvolution", "fdtd2d",    "gsummv",     "syrk",
        "sgemm_1024x1024x1024",       "wgemm_512x2048x512",
        "conv_inf_in3", "gemm_train_tc_in2", "rnn_inf_in5",
    };
    return names;
}

workload::Workload
get(const std::string &name)
{
    auto w = workload::buildWorkload(name);
    EXPECT_TRUE(w.has_value()) << name;
    return std::move(*w);
}

} // namespace

class WorkloadProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadProperty, SelectionPartitionsTheLaunchStream)
{
    auto w = get(GetParam());
    silicon::SiliconGpu gpu(silicon::voltaV100());
    silicon::DetailedProfiler prof(gpu);
    auto res = core::principalKernelSelection(prof.profile(w));

    // Every launch appears in exactly one group; weights sum to n.
    std::set<uint32_t> seen;
    double weight = 0.0;
    for (const auto &g : res.groups) {
        EXPECT_FALSE(g.members.empty());
        weight += g.weight;
        EXPECT_DOUBLE_EQ(g.weight,
                         static_cast<double>(g.members.size()));
        for (uint32_t m : g.members) {
            EXPECT_TRUE(seen.insert(m).second)
                << "launch " << m << " in two groups";
            EXPECT_LT(m, w.launches.size());
        }
        // First-chronological representative by default.
        EXPECT_EQ(g.representative, g.members.front());
    }
    EXPECT_EQ(seen.size(), w.launches.size());
    EXPECT_DOUBLE_EQ(weight, static_cast<double>(w.launches.size()));
    // The K sweep honours the 5% target whenever it is achievable; it
    // never reports a *worse* grouping than it found.
    EXPECT_LT(res.projectedErrorPct, 100.0);
}

TEST_P(WorkloadProperty, SiliconMonotoneAcrossSmCounts)
{
    auto w = get(GetParam());
    silicon::SiliconGpu full(silicon::voltaV100());
    silicon::SiliconGpu half(
        silicon::withSmCount(silicon::voltaV100(), 40));
    // Halving the machine never makes the whole app materially faster
    // (latency-bound small grids may tip within ~1% from the model's
    // per-SM rounding, as on real parts).
    EXPECT_GE(static_cast<double>(half.run(w).totalCycles),
              static_cast<double>(full.run(w).totalCycles) * 0.98);
}

TEST_P(WorkloadProperty, SimulatorConservesWork)
{
    auto w = get(GetParam());
    sim::GpuSimulator s(silicon::voltaV100());
    // First and last launches: every CTA finishes and instruction
    // counts match the trace-resolved totals.
    for (size_t idx : {size_t{0}, w.launches.size() - 1}) {
        const auto &k = w.launches[idx];
        auto r = s.simulateKernel(k, w.seed);
        EXPECT_EQ(r.finishedCtas, r.totalCtas) << idx;
        sim::KernelTrace t = sim::captureTrace(k, w.seed);
        EXPECT_EQ(r.warpInstructions, t.warpInstructions(k)) << idx;
    }
}

TEST_P(WorkloadProperty, TraceReplayReproducesFirstKernel)
{
    auto w = get(GetParam());
    sim::GpuSimulator s(silicon::voltaV100());
    const auto &k = w.launches[0];
    auto live = s.simulateKernel(k, w.seed);
    sim::KernelTrace t = sim::captureTrace(k, w.seed);
    sim::SimOptions opts;
    opts.trace = &t;
    auto replay = s.simulateKernel(k, w.seed, opts);
    EXPECT_EQ(replay.cycles, live.cycles);
    EXPECT_EQ(replay.warpInstructions, live.warpInstructions);
}

/**
 * Degenerate feature matrices swept through the scaler → PCA → K-Means
 * stack. The contract under test (see each class's header): lenient
 * entry points always produce finite output, checked entry points turn
 * poison into typed kBadInput errors — no asserts, no NaN leakage.
 */
class DegenerateMatrix
    : public ::testing::TestWithParam<std::pair<const char *, ml::Matrix>>
{
  public:
    static std::vector<std::pair<const char *, ml::Matrix>> cases()
    {
        const double inf = std::numeric_limits<double>::infinity();
        ml::Matrix zero_col = ml::Matrix::fromRows(
            {{1, 0, 3}, {2, 0, 5}, {4, 0, 2}, {8, 0, 9}});
        ml::Matrix single_row = ml::Matrix::fromRows({{3, 1, 4}});
        ml::Matrix duplicated = ml::Matrix::fromRows(
            {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
        ml::Matrix pos_inf = ml::Matrix::fromRows(
            {{1, 2, 3}, {4, inf, 6}, {7, 8, 9}, {2, 1, 0}});
        ml::Matrix neg_inf = ml::Matrix::fromRows(
            {{1, 2, 3}, {4, 5, 6}, {7, -inf, 9}, {2, 1, 0}});
        return {{"all_zero_column", zero_col},
                {"single_row", single_row},
                {"duplicated_rows", duplicated},
                {"pos_inf_cell", pos_inf},
                {"neg_inf_cell", neg_inf}};
    }

    static bool hasPoison(const ml::Matrix &X)
    {
        for (size_t r = 0; r < X.rows(); ++r)
            for (size_t c = 0; c < X.cols(); ++c)
                if (!std::isfinite(X.at(r, c)))
                    return true;
        return false;
    }
};

TEST_P(DegenerateMatrix, ScalerOutputIsAlwaysFinite)
{
    const ml::Matrix &X = GetParam().second;
    ml::StandardScaler scaler;
    ml::Matrix Z = scaler.fitTransform(X);
    for (size_t r = 0; r < Z.rows(); ++r)
        for (size_t c = 0; c < Z.cols(); ++c)
            EXPECT_TRUE(std::isfinite(Z.at(r, c))) << r << "," << c;

    ml::StandardScaler checked;
    auto res = checked.fitChecked(X);
    if (hasPoison(X)) {
        ASSERT_FALSE(res.ok());
        EXPECT_EQ(res.error().kind, common::ErrorKind::kBadInput);
    } else {
        ASSERT_TRUE(res.ok());
    }
}

TEST_P(DegenerateMatrix, PcaOutputIsAlwaysFinite)
{
    const ml::Matrix &X = GetParam().second;
    ml::Pca pca;
    pca.fit(X); // lenient path clamps poison, never asserts
    ml::Matrix Y = pca.transform(X, std::min<size_t>(2, X.cols()));
    for (size_t r = 0; r < Y.rows(); ++r)
        for (size_t c = 0; c < Y.cols(); ++c)
            EXPECT_TRUE(std::isfinite(Y.at(r, c))) << r << "," << c;
    size_t k = pca.componentsForVariance(0.9);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, X.cols());

    ml::Pca checked;
    auto res = checked.fitChecked(X);
    if (hasPoison(X)) {
        ASSERT_FALSE(res.ok());
        EXPECT_EQ(res.error().kind, common::ErrorKind::kBadInput);
    } else {
        ASSERT_TRUE(res.ok());
    }
}

TEST_P(DegenerateMatrix, KmeansLabelsEveryRow)
{
    const ml::Matrix &X = GetParam().second;
    // Ask for more clusters than rows: k must clamp, every row must get
    // a valid label, and inertia must stay finite.
    ml::KMeansResult res = ml::kmeans(X, static_cast<uint32_t>(
                                             X.rows() + 3));
    EXPECT_GE(res.k, 1u);
    EXPECT_LE(res.k, X.rows());
    ASSERT_EQ(res.labels.size(), X.rows());
    for (uint32_t l : res.labels)
        EXPECT_LT(l, res.k);
    EXPECT_TRUE(std::isfinite(res.inertia));
    for (size_t r = 0; r < res.centroids.rows(); ++r)
        for (size_t c = 0; c < res.centroids.cols(); ++c)
            EXPECT_TRUE(std::isfinite(res.centroids.at(r, c)));

    auto checked = ml::kmeansChecked(X, 2);
    if (hasPoison(X)) {
        ASSERT_FALSE(checked.ok());
        EXPECT_EQ(checked.error().kind, common::ErrorKind::kBadInput);
    } else {
        ASSERT_TRUE(checked.ok());
        EXPECT_EQ(checked.value().labels, ml::kmeans(X, 2).labels);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Degenerate, DegenerateMatrix,
    ::testing::ValuesIn(DegenerateMatrix::cases()),
    [](const ::testing::TestParamInfo<
        std::pair<const char *, ml::Matrix>> &info) {
        return info.param.first;
    });

INSTANTIATE_TEST_SUITE_P(
    Registry, WorkloadProperty, ::testing::ValuesIn(sampleNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });
