/**
 * @file
 * Cross-cutting property sweeps over real registry workloads: selection
 * partitions, simulation conservation laws, silicon monotonicity and
 * trace-replay equivalence must hold for every workload shape the
 * generators produce, not just hand-picked cases.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/pks.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "workload/suites.hh"

using namespace pka;

namespace
{

const std::vector<std::string> &
sampleNames()
{
    // A spread across suites, structures and irregularity.
    static const std::vector<std::string> names = {
        "b+tree",     "bfs1MW",       "gauss_208",  "gauss_s16",
        "hstort_r",   "kmeans_28k",   "lud_256",    "nw",
        "srad_v2",    "cutcp",        "histo",      "spmv",
        "3dconvolution", "fdtd2d",    "gsummv",     "syrk",
        "sgemm_1024x1024x1024",       "wgemm_512x2048x512",
        "conv_inf_in3", "gemm_train_tc_in2", "rnn_inf_in5",
    };
    return names;
}

workload::Workload
get(const std::string &name)
{
    auto w = workload::buildWorkload(name);
    EXPECT_TRUE(w.has_value()) << name;
    return std::move(*w);
}

} // namespace

class WorkloadProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadProperty, SelectionPartitionsTheLaunchStream)
{
    auto w = get(GetParam());
    silicon::SiliconGpu gpu(silicon::voltaV100());
    silicon::DetailedProfiler prof(gpu);
    auto res = core::principalKernelSelection(prof.profile(w));

    // Every launch appears in exactly one group; weights sum to n.
    std::set<uint32_t> seen;
    double weight = 0.0;
    for (const auto &g : res.groups) {
        EXPECT_FALSE(g.members.empty());
        weight += g.weight;
        EXPECT_DOUBLE_EQ(g.weight,
                         static_cast<double>(g.members.size()));
        for (uint32_t m : g.members) {
            EXPECT_TRUE(seen.insert(m).second)
                << "launch " << m << " in two groups";
            EXPECT_LT(m, w.launches.size());
        }
        // First-chronological representative by default.
        EXPECT_EQ(g.representative, g.members.front());
    }
    EXPECT_EQ(seen.size(), w.launches.size());
    EXPECT_DOUBLE_EQ(weight, static_cast<double>(w.launches.size()));
    // The K sweep honours the 5% target whenever it is achievable; it
    // never reports a *worse* grouping than it found.
    EXPECT_LT(res.projectedErrorPct, 100.0);
}

TEST_P(WorkloadProperty, SiliconMonotoneAcrossSmCounts)
{
    auto w = get(GetParam());
    silicon::SiliconGpu full(silicon::voltaV100());
    silicon::SiliconGpu half(
        silicon::withSmCount(silicon::voltaV100(), 40));
    // Halving the machine never makes the whole app materially faster
    // (latency-bound small grids may tip within ~1% from the model's
    // per-SM rounding, as on real parts).
    EXPECT_GE(static_cast<double>(half.run(w).totalCycles),
              static_cast<double>(full.run(w).totalCycles) * 0.98);
}

TEST_P(WorkloadProperty, SimulatorConservesWork)
{
    auto w = get(GetParam());
    sim::GpuSimulator s(silicon::voltaV100());
    // First and last launches: every CTA finishes and instruction
    // counts match the trace-resolved totals.
    for (size_t idx : {size_t{0}, w.launches.size() - 1}) {
        const auto &k = w.launches[idx];
        auto r = s.simulateKernel(k, w.seed);
        EXPECT_EQ(r.finishedCtas, r.totalCtas) << idx;
        sim::KernelTrace t = sim::captureTrace(k, w.seed);
        EXPECT_EQ(r.warpInstructions, t.warpInstructions(k)) << idx;
    }
}

TEST_P(WorkloadProperty, TraceReplayReproducesFirstKernel)
{
    auto w = get(GetParam());
    sim::GpuSimulator s(silicon::voltaV100());
    const auto &k = w.launches[0];
    auto live = s.simulateKernel(k, w.seed);
    sim::KernelTrace t = sim::captureTrace(k, w.seed);
    sim::SimOptions opts;
    opts.trace = &t;
    auto replay = s.simulateKernel(k, w.seed, opts);
    EXPECT_EQ(replay.cycles, live.cycles);
    EXPECT_EQ(replay.warpInstructions, live.warpInstructions);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, WorkloadProperty, ::testing::ValuesIn(sampleNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });
