/**
 * @file
 * Integration tests spanning profiling -> selection -> simulation ->
 * projection: the full PKA methodology on real registry workloads,
 * including the two-level MLPerf path, exclusions, cross-generation
 * selection reuse and end-to-end error bounds.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/experiments.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

using namespace pka;
using namespace pka::core;

namespace
{

WorkloadPair
pairFor(const std::string &name,
        const workload::GenOptions &g = workload::GenOptions{})
{
    workload::GenOptions traced = g, profiled = g;
    profiled.underProfiler = true;
    auto t = workload::buildWorkload(name, traced);
    auto p = workload::buildWorkload(name, profiled);
    EXPECT_TRUE(t && p) << name;
    return WorkloadPair{std::move(*t), std::move(*p)};
}

const silicon::GpuSpec &
volta()
{
    static auto spec = silicon::voltaV100();
    return spec;
}

} // namespace

TEST(Integration, PksMatchesPaperGroupCounts)
{
    silicon::SiliconGpu gpu(volta());
    silicon::DetailedProfiler prof(gpu);

    struct Case { const char *name; size_t min_g, max_g; };
    // Table 3 structures: gaussian -> 1 group, histo -> 4, cutcp -> 3,
    // fdtd2d -> 2.
    for (auto c : std::initializer_list<Case>{{"gauss_208", 1, 1},
                                              {"histo", 4, 4},
                                              {"cutcp", 3, 3},
                                              {"fdtd2d", 2, 2}}) {
        auto w = workload::buildWorkload(c.name);
        ASSERT_TRUE(w);
        auto res = principalKernelSelection(prof.profile(*w));
        EXPECT_GE(res.groups.size(), c.min_g) << c.name;
        EXPECT_LE(res.groups.size(), c.max_g) << c.name;
        EXPECT_LT(res.projectedErrorPct, 5.01) << c.name;
    }
}

TEST(Integration, SelectionRepresentativesAreFirstChronological)
{
    silicon::SiliconGpu gpu(volta());
    silicon::DetailedProfiler prof(gpu);
    auto w = workload::buildWorkload("gramschmidt");
    ASSERT_TRUE(w);
    auto res = principalKernelSelection(prof.profile(*w));
    for (const auto &g : res.groups) {
        ASSERT_FALSE(g.members.empty());
        EXPECT_EQ(g.representative, g.members.front());
        for (size_t i = 1; i < g.members.size(); ++i)
            EXPECT_GT(g.members[i], g.members[i - 1]);
    }
}

TEST(Integration, RunPkaOnClassicWorkload)
{
    silicon::SiliconGpu gpu(volta());
    sim::GpuSimulator simr(volta());
    auto p = pairFor("histo");
    PkaAppResult res = runPka(p.traced, p.profiled, gpu, simr);
    EXPECT_FALSE(res.excluded);
    EXPECT_FALSE(res.selection.usedTwoLevel);
    EXPECT_GT(res.pks.projectedCycles, 0.0);
    EXPECT_GT(res.pka.projectedCycles, 0.0);
    // PKA never simulates more than PKS.
    EXPECT_LE(res.pka.simulatedCycles, res.pks.simulatedCycles + 1);
}

TEST(Integration, ProfilerSensitiveWorkloadExcluded)
{
    silicon::SiliconGpu gpu(volta());
    sim::GpuSimulator simr(volta());
    auto p = pairFor("myocyte");
    PkaAppResult res = runPka(p.traced, p.profiled, gpu, simr);
    EXPECT_TRUE(res.excluded);
    EXPECT_NE(res.exclusionReason.find("kernels"), std::string::npos);
}

TEST(Integration, MlperfUsesTwoLevelProfiling)
{
    workload::GenOptions g;
    g.mlperfScale = 0.005;
    silicon::SiliconGpu gpu(volta());
    auto p = pairFor("ssd_training", g);
    PkaOptions o;
    o.twoLevelDetailedKernels = 500;
    SelectionOutcome sel = selectKernels(p.profiled, gpu, o);
    EXPECT_TRUE(sel.usedTwoLevel);
    EXPECT_EQ(sel.detailedCount, 500u);
    double covered = 0;
    for (const auto &gr : sel.groups)
        covered += gr.weight;
    EXPECT_DOUBLE_EQ(covered,
                     static_cast<double>(p.profiled.launches.size()));
}

TEST(Integration, SmallWorkloadsUseFullDetailedProfiling)
{
    silicon::SiliconGpu gpu(volta());
    auto p = pairFor("cutcp");
    SelectionOutcome sel = selectKernels(p.profiled, gpu, PkaOptions{});
    EXPECT_FALSE(sel.usedTwoLevel);
    EXPECT_EQ(sel.detailedCount, p.profiled.launches.size());
}

TEST(Integration, PkpTriggersOnLongStableKernel)
{
    // syr2k: one large, regular kernel — the PKP showcase shape.
    silicon::SiliconGpu gpu(volta());
    sim::GpuSimulator simr(volta());
    auto p = pairFor("syr2k");
    PkaAppResult res = runPka(p.traced, p.profiled, gpu, simr);
    ASSERT_FALSE(res.excluded);
    EXPECT_LT(res.pka.simulatedCycles, res.pks.simulatedCycles);
    // Projection still lands near the full-kernel cycle count.
    EXPECT_LT(pka::common::pctError(res.pka.projectedCycles,
                                    res.pks.projectedCycles),
              40.0);
}

TEST(Integration, CrossGenerationSelectionReuse)
{
    // Volta-selected kernels projected on Turing/Ampere silicon: the
    // paper's Table 4 silicon columns.
    silicon::SiliconGpu volta_gpu(volta());
    silicon::DetailedProfiler prof(volta_gpu);
    auto w = workload::buildWorkload("gauss_s64");
    ASSERT_TRUE(w);
    auto sel = principalKernelSelection(prof.profile(*w));

    for (auto spec : {silicon::turingRtx2060(), silicon::ampereRtx3070()}) {
        silicon::SiliconGpu gpu(spec);
        auto app = gpu.run(*w);
        std::vector<uint64_t> cycles(w->launches.size());
        for (size_t i = 0; i < app.launches.size(); ++i)
            cycles[i] = app.launches[i].cycles;
        auto ev = evaluateSelection(sel.groups, cycles);
        EXPECT_LT(ev.errorPct, 12.0) << spec.name;
        EXPECT_GT(ev.speedup, 30.0) << spec.name;
    }
}

TEST(Integration, EvaluateAppProducesConsistentRecord)
{
    silicon::SiliconGpu gpu(volta());
    sim::GpuSimulator simr(volta());
    auto p = pairFor("spmv");
    AppEvaluation ev = evaluateApp(p, gpu, simr);
    EXPECT_EQ(ev.name, "spmv");
    EXPECT_TRUE(ev.fullySimulated);
    EXPECT_GT(ev.siliconCycles, 0.0);
    EXPECT_GT(ev.fullSim.cycles, 0.0);
    EXPECT_GT(ev.siliconIpc, 0.0);
    EXPECT_GE(ev.pksSpeedupVsFull, 1.0);
    EXPECT_LT(ev.siliconPksErrorPct, 6.0);
    // Full-sim and PKS land on the same side within reason.
    EXPECT_LT(std::abs(ev.simErrorPct - ev.pksErrorPct), 60.0);
}

TEST(Integration, FullSimulateAccountsEveryKernel)
{
    sim::GpuSimulator simr(volta());
    auto w = workload::buildWorkload("cutcp");
    ASSERT_TRUE(w);
    FullSimResult r = fullSimulate(simr, *w);
    EXPECT_EQ(r.perKernel.size(), w->launches.size());
    double sum = 0;
    for (const auto &k : r.perKernel)
        sum += static_cast<double>(k.cycles);
    EXPECT_DOUBLE_EQ(sum, r.cycles);
}

TEST(Integration, MlperfIsNotFullySimulable)
{
    workload::GenOptions g;
    g.mlperfScale = 0.002;
    auto w = workload::buildWorkload("bert_inference", g);
    ASSERT_TRUE(w);
    EXPECT_FALSE(isFullySimulable(*w));
    auto c = workload::buildWorkload("histo");
    EXPECT_TRUE(isFullySimulable(*c));
}

TEST(Integration, BuildAllPairsAligned)
{
    auto pairs = buildAllPairs();
    EXPECT_EQ(pairs.size(), 147u);
    int mismatched = 0;
    for (const auto &p : pairs) {
        EXPECT_EQ(p.traced.name, p.profiled.name);
        mismatched +=
            p.traced.launches.size() != p.profiled.launches.size();
    }
    // myocyte + 5 non-TC conv-training inputs.
    EXPECT_EQ(mismatched, 6);
}

TEST(Integration, ProjectedSimHoursScale)
{
    EXPECT_NEAR(projectedSimHours(kSimCyclesPerSecond * 3600.0), 1.0,
                1e-9);
}
