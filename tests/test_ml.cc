/**
 * @file
 * ML-library tests: matrix, scaler, Jacobi eigendecomposition, PCA,
 * K-Means, the three classifiers and their ensemble, and hierarchical
 * clustering (including its deliberate scaling guardrail).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/classifier.hh"
#include "ml/gaussian_nb.hh"
#include "ml/hierarchical.hh"
#include "ml/kmeans.hh"
#include "ml/matrix.hh"
#include "ml/mlp_classifier.hh"
#include "ml/pca.hh"
#include "ml/scaler.hh"
#include "ml/sgd_classifier.hh"

using namespace pka::ml;
using pka::common::Rng;

namespace
{

/** Three well-separated Gaussian blobs in 2D. */
void
makeBlobs(Matrix &X, std::vector<uint32_t> &y, int per_class = 40,
          double spread = 0.3)
{
    Rng rng(314);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    X = Matrix(3 * per_class, 2);
    y.assign(3 * per_class, 0);
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < per_class; ++i) {
            size_t r = c * per_class + i;
            X.at(r, 0) = centers[c][0] + rng.normal(0, spread);
            X.at(r, 1) = centers[c][1] + rng.normal(0, spread);
            y[r] = static_cast<uint32_t>(c);
        }
}

/** Classification accuracy helper. */
double
accuracy(const Classifier &m, const Matrix &X,
         const std::vector<uint32_t> &y)
{
    auto pred = m.predictAll(X);
    size_t ok = 0;
    for (size_t i = 0; i < y.size(); ++i)
        ok += pred[i] == y[i];
    return static_cast<double>(ok) / static_cast<double>(y.size());
}

} // namespace

TEST(Matrix, BasicAccess)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
    m.at(0, 1) = 7;
    EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(m.row(0)[1], 7.0);
}

TEST(Matrix, FromRows)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
    EXPECT_TRUE(Matrix::fromRows({}).empty());
}

TEST(Matrix, OutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
    EXPECT_DEATH(m.at(0, 2), "out of range");
}

TEST(Matrix, SquaredDistance)
{
    std::vector<double> a = {0, 0}, b = {3, 4};
    EXPECT_DOUBLE_EQ(squaredDistance(a, b), 25.0);
}

TEST(Scaler, StandardizesColumns)
{
    Matrix X = Matrix::fromRows({{1, 100}, {3, 300}, {5, 500}});
    StandardScaler s;
    Matrix Z = s.fitTransform(X);
    for (size_t c = 0; c < 2; ++c) {
        double m = (Z.at(0, c) + Z.at(1, c) + Z.at(2, c)) / 3;
        EXPECT_NEAR(m, 0.0, 1e-12);
    }
    EXPECT_NEAR(Z.at(2, 0), Z.at(2, 1), 1e-12); // same z-scores
}

TEST(Scaler, ConstantColumnMapsToZero)
{
    Matrix X = Matrix::fromRows({{7, 1}, {7, 2}, {7, 3}});
    StandardScaler s;
    Matrix Z = s.fitTransform(X);
    EXPECT_DOUBLE_EQ(Z.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(Z.at(2, 0), 0.0);
}

TEST(Jacobi, DiagonalMatrix)
{
    Matrix a = Matrix::fromRows({{3, 0}, {0, 1}});
    std::vector<double> eig;
    Matrix vec;
    jacobiEigenSymmetric(a, eig, vec);
    EXPECT_NEAR(eig[0], 3.0, 1e-10);
    EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(Jacobi, KnownSymmetricMatrix)
{
    // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
    Matrix a = Matrix::fromRows({{2, 1}, {1, 2}});
    std::vector<double> eig;
    Matrix vec;
    jacobiEigenSymmetric(a, eig, vec);
    EXPECT_NEAR(eig[0], 3.0, 1e-10);
    EXPECT_NEAR(eig[1], 1.0, 1e-10);
    // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::abs(vec.at(0, 0)), std::sqrt(0.5), 1e-8);
    EXPECT_NEAR(std::abs(vec.at(0, 1)), std::sqrt(0.5), 1e-8);
}

TEST(Jacobi, EigenvectorsSatisfyDefinition)
{
    Matrix a = Matrix::fromRows(
        {{4, 1, 0.5}, {1, 3, 0.2}, {0.5, 0.2, 2}});
    std::vector<double> eig;
    Matrix vec;
    jacobiEigenSymmetric(a, eig, vec);
    for (size_t k = 0; k < 3; ++k) {
        for (size_t i = 0; i < 3; ++i) {
            double av = 0;
            for (size_t j = 0; j < 3; ++j)
                av += a.at(i, j) * vec.at(k, j);
            EXPECT_NEAR(av, eig[k] * vec.at(k, i), 1e-8);
        }
    }
    EXPECT_GE(eig[0], eig[1]);
    EXPECT_GE(eig[1], eig[2]);
}

TEST(Pca, FindsDominantDirection)
{
    // Points along y = 2x with small noise: PC1 explains ~all variance.
    Rng rng(5);
    Matrix X(200, 2);
    for (size_t i = 0; i < 200; ++i) {
        double t = rng.normal(0, 3);
        X.at(i, 0) = t + rng.normal(0, 0.05);
        X.at(i, 1) = 2 * t + rng.normal(0, 0.05);
    }
    Pca pca;
    pca.fit(X);
    EXPECT_GT(pca.explainedVarianceRatio()[0], 0.99);
    EXPECT_EQ(pca.componentsForVariance(0.95), 1u);
    EXPECT_EQ(pca.componentsForVariance(0.999999), 2u);
}

TEST(Pca, TransformPreservesSeparation)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    Pca pca;
    pca.fit(X);
    Matrix P = pca.transform(X, 2);
    // Distances between class centroids stay large in PCA space.
    double d01 = squaredDistance(P.row(0), P.row(60));
    EXPECT_GT(d01, 10.0);
}

TEST(KMeans, RecoversSeparatedBlobs)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    auto res = kmeans(X, 3);
    EXPECT_EQ(res.k, 3u);
    // Every true class maps to exactly one cluster label.
    for (int c = 0; c < 3; ++c) {
        uint32_t lbl = res.labels[c * 40];
        for (int i = 1; i < 40; ++i)
            EXPECT_EQ(res.labels[c * 40 + i], lbl);
    }
    EXPECT_NE(res.labels[0], res.labels[40]);
    EXPECT_NE(res.labels[40], res.labels[80]);
}

TEST(KMeans, InertiaDecreasesWithK)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    double prev = kmeans(X, 1).inertia;
    for (uint32_t k : {2u, 3u, 6u}) {
        double cur = kmeans(X, k).inertia;
        EXPECT_LE(cur, prev + 1e-9);
        prev = cur;
    }
}

TEST(KMeans, ClampsKToSampleCount)
{
    Matrix X = Matrix::fromRows({{0, 0}, {1, 1}});
    auto res = kmeans(X, 10);
    EXPECT_LE(res.k, 2u);
}

TEST(KMeans, Deterministic)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    auto a = kmeans(X, 3);
    auto b = kmeans(X, 3);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, SingleCluster)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    auto res = kmeans(X, 1);
    for (uint32_t l : res.labels)
        EXPECT_EQ(l, 0u);
}

TEST(Classifiers, SgdLearnsBlobs)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    SgdClassifier m;
    m.fit(X, y, 3);
    EXPECT_GT(accuracy(m, X, y), 0.95);
    EXPECT_EQ(std::string(m.name()), "sgd");
}

TEST(Classifiers, GaussianNbLearnsBlobs)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    GaussianNb m;
    m.fit(X, y, 3);
    EXPECT_GT(accuracy(m, X, y), 0.95);
}

TEST(Classifiers, MlpLearnsBlobs)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    MlpClassifier m;
    m.fit(X, y, 3);
    EXPECT_GT(accuracy(m, X, y), 0.95);
}

TEST(Classifiers, MlpLearnsNonLinearBoundary)
{
    // XOR-style data defeats a linear model but not the MLP.
    Rng rng(77);
    Matrix X(200, 2);
    std::vector<uint32_t> y(200);
    for (size_t i = 0; i < 200; ++i) {
        double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        X.at(i, 0) = a;
        X.at(i, 1) = b;
        y[i] = (a * b > 0) ? 1 : 0;
    }
    MlpClassifier::Options o;
    o.epochs = 200;
    o.hiddenUnits = 16;
    MlpClassifier m(o);
    m.fit(X, y, 2);
    EXPECT_GT(accuracy(m, X, y), 0.9);
}

TEST(Classifiers, PredictProbaIsADistributionAndMatchesPredict)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y);
    SgdClassifier sgd;
    GaussianNb nb;
    MlpClassifier mlp;
    sgd.fit(X, y, 3);
    nb.fit(X, y, 3);
    mlp.fit(X, y, 3);
    const Classifier *models[] = {&sgd, &nb, &mlp};
    for (const Classifier *m : models) {
        for (size_t r = 0; r < X.rows(); ++r) {
            auto p = m->predictProba(X.row(r));
            ASSERT_EQ(p.size(), 3u) << m->name();
            double sum = 0.0;
            for (double v : p) {
                EXPECT_GE(v, 0.0) << m->name();
                EXPECT_LE(v, 1.0 + 1e-12) << m->name();
                sum += v;
            }
            EXPECT_NEAR(sum, 1.0, 1e-9) << m->name();
            // Argmax of the distribution is the predicted label — the
            // confidence gate can never silently change a decision.
            uint32_t argmax = 0;
            for (uint32_t c = 1; c < 3; ++c)
                if (p[c] > p[argmax])
                    argmax = c;
            EXPECT_EQ(argmax, m->predict(X.row(r))) << m->name();
        }
    }
}

TEST(KMeans, EmptyClusterReseedIsDeterministic)
{
    // Six identical points with k=3: every centroid collapses onto the
    // one location, assignment sends all points to cluster 0, and the
    // farthest-point reseed must fire for the empty clusters — without
    // breaking determinism or label validity.
    Matrix X = Matrix::fromRows({{2, 2}, {2, 2}, {2, 2},
                                 {2, 2}, {2, 2}, {2, 2}});
    auto a = kmeans(X, 3);
    auto b = kmeans(X, 3);
    EXPECT_GT(a.emptyReseeds, 0u);
    EXPECT_EQ(a.emptyReseeds, b.emptyReseeds);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.inertia, 0.0);
    for (uint32_t l : a.labels)
        EXPECT_LT(l, a.k);
}

TEST(KMeans, ClampContractKNeverExceedsSamples)
{
    // The k > n clamp is a contract, not a best effort: any k maps into
    // [1, n] and every sample still gets a valid label.
    Matrix X = Matrix::fromRows({{0, 0}, {1, 1}, {2, 2}});
    for (uint32_t k : {1u, 3u, 4u, 100u}) {
        auto res = kmeans(X, k);
        EXPECT_GE(res.k, 1u);
        EXPECT_LE(res.k, 3u);
        ASSERT_EQ(res.labels.size(), 3u);
        for (uint32_t l : res.labels)
            EXPECT_LT(l, res.k);
    }
}

TEST(Classifiers, PredictBeforeFitPanics)
{
    SgdClassifier s;
    GaussianNb g;
    MlpClassifier m;
    std::vector<double> x = {0.0, 0.0};
    EXPECT_DEATH(s.predict(x), "not fitted");
    EXPECT_DEATH(g.predict(x), "not fitted");
    EXPECT_DEATH(m.predict(x), "not fitted");
}

TEST(Classifiers, MajorityVote)
{
    std::vector<uint32_t> v1 = {1, 1, 2};
    EXPECT_EQ(majorityVote(v1), 1u);
    std::vector<uint32_t> v2 = {3, 2, 2};
    EXPECT_EQ(majorityVote(v2), 2u);
    // Three-way tie resolves to the earliest voter.
    std::vector<uint32_t> v3 = {5, 7, 9};
    EXPECT_EQ(majorityVote(v3), 5u);
}

TEST(Hierarchical, MergesBlobsAtLooseThreshold)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y, 15);
    auto res = agglomerativeCluster(X, 3.0).value();
    EXPECT_EQ(res.numClusters, 3u);
    for (int c = 0; c < 3; ++c)
        for (int i = 1; i < 15; ++i)
            EXPECT_EQ(res.labels[c * 15 + i], res.labels[c * 15]);
}

TEST(Hierarchical, TightThresholdKeepsSingletons)
{
    Matrix X = Matrix::fromRows({{0, 0}, {5, 0}, {10, 0}});
    auto res = agglomerativeCluster(X, 0.1).value();
    EXPECT_EQ(res.numClusters, 3u);
}

TEST(Hierarchical, EverythingMergesAtHugeThreshold)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y, 10);
    auto res = agglomerativeCluster(X, 1e6).value();
    EXPECT_EQ(res.numClusters, 1u);
}

TEST(Hierarchical, GuardrailIsTypedError)
{
    Matrix X(50, 2);
    auto res = agglomerativeCluster(X, 1.0, 10);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, pka::common::ErrorKind::kBadInput);
    EXPECT_NE(res.error().message.find("guardrail"), std::string::npos);
}

TEST(Hierarchical, EmptyInputIsTypedError)
{
    Matrix X;
    auto res = buildDendrogram(X);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, pka::common::ErrorKind::kBadInput);
}

/** K sweep property: kmeans always yields labels < k and k >= 1. */
class KMeansSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(KMeansSweep, LabelsInRange)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y, 20);
    auto res = kmeans(X, GetParam());
    EXPECT_EQ(res.labels.size(), X.rows());
    for (uint32_t l : res.labels)
        EXPECT_LT(l, res.k);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 20));

TEST(Hierarchical, DendrogramCutMonotone)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y, 12);
    Dendrogram d = buildDendrogram(X).value();
    EXPECT_EQ(d.merges.size(), X.rows() - 1);
    uint32_t prev = static_cast<uint32_t>(X.rows()) + 1;
    for (double t : {0.0, 0.5, 1.0, 3.0, 1e6}) {
        auto cut = cutDendrogram(d, t);
        EXPECT_LE(cut.numClusters, prev);
        prev = cut.numClusters;
    }
    EXPECT_EQ(cutDendrogram(d, 1e6).numClusters, 1u);
}

TEST(Hierarchical, DendrogramMatchesConvenienceCut)
{
    Matrix X;
    std::vector<uint32_t> y;
    makeBlobs(X, y, 8);
    Dendrogram d = buildDendrogram(X).value();
    auto a = cutDendrogram(d, 2.0);
    auto b = agglomerativeCluster(X, 2.0).value();
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Hierarchical, SingleSampleDendrogram)
{
    Matrix X = Matrix::fromRows({{1.0, 2.0}});
    Dendrogram d = buildDendrogram(X).value();
    EXPECT_TRUE(d.merges.empty());
    auto cut = cutDendrogram(d, 1.0);
    EXPECT_EQ(cut.numClusters, 1u);
}
