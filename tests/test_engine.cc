/**
 * @file
 * Parallel campaign engine tests: ThreadPool index coverage, bit-identical
 * aggregates for any thread count, memoization-cache semantics under
 * launch-id versus content seeding, and stop-policy cache keying.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/experiments.hh"
#include "core/pka.hh"
#include "core/pkp.hh"
#include "silicon/gpu_spec.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "sim/thread_pool.hh"
#include "workload/builder.hh"

using namespace pka::sim;
using namespace pka::workload;
using pka::silicon::voltaV100;

namespace
{

ProgramPtr
jitterProg(const std::string &name)
{
    return ProgramBuilder(name)
        .seg(InstrClass::GlobalLoad, 2)
        .seg(InstrClass::FpAlu, 8)
        .seg(InstrClass::GlobalStore, 1)
        .mem(2.0, 0.4, 0.6)
        .build();
}

KernelDescriptor
makeLaunch(ProgramPtr p, uint32_t launch_id, uint32_t ctas,
           uint32_t iters, double cta_work_cv)
{
    KernelDescriptor k;
    k.launchId = launch_id;
    k.program = std::move(p);
    k.grid = {ctas, 1, 1};
    k.block = {128, 1, 1};
    k.iterations = iters;
    k.ctaWorkCv = cta_work_cv;
    return k;
}

/** A workload whose launches vary in shape and carry CTA-work jitter. */
Workload
mixedWorkload(size_t launches)
{
    Workload w;
    w.suite = "test";
    w.name = "engine_mixed";
    w.seed = 42;
    ProgramPtr a = jitterProg("a");
    ProgramPtr b = jitterProg("b");
    for (size_t i = 0; i < launches; ++i) {
        ProgramPtr p = (i % 2 == 0) ? a : b;
        w.launches.push_back(makeLaunch(
            p, static_cast<uint32_t>(i), 40 + (i % 5) * 24,
            2 + static_cast<uint32_t>(i % 3), 0.3));
    }
    return w;
}

/** N launches of byte-identical content, distinct only in launchId. */
Workload
repeatedWorkload(size_t launches)
{
    Workload w;
    w.suite = "test";
    w.name = "engine_repeated";
    w.seed = 7;
    ProgramPtr p = jitterProg("rep");
    for (size_t i = 0; i < launches; ++i)
        w.launches.push_back(
            makeLaunch(p, static_cast<uint32_t>(i), 64, 3, 0.4));
    return w;
}

EngineOptions
engineOpts(unsigned threads, bool memoize, bool content_seed = false)
{
    EngineOptions eo;
    eo.threads = threads;
    eo.memoize = memoize;
    eo.contentSeed = content_seed;
    return eo;
}

} // namespace

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    constexpr size_t n = 2000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, HandlesEmptyAndTinyBatchesAndReuse)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](size_t) { FAIL() << "no indices expected"; });

    // Fewer items than workers, then reuse across batches.
    for (int round = 0; round < 3; ++round) {
        std::vector<std::atomic<int>> counts(2);
        pool.parallelFor(2, [&](size_t i) { counts[i].fetch_add(1); });
        EXPECT_EQ(counts[0].load(), 1);
        EXPECT_EQ(counts[1].load(), 1);
    }
}

TEST(ThreadPool, SizeOneRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<size_t> sum{0};
    pool.parallelFor(100, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(SimEngine, FullSimAggregatesBitIdenticalAcrossThreadCounts)
{
    GpuSimulator simulator(voltaV100());
    Workload w = mixedWorkload(24);

    SimEngine e1(engineOpts(1, false));
    pka::core::FullSimResult base =
        pka::core::fullSimulate(e1, simulator, w);
    ASSERT_GT(base.cycles, 0.0);

    for (unsigned t : {2u, 8u}) {
        SimEngine e(engineOpts(t, false));
        pka::core::FullSimResult r =
            pka::core::fullSimulate(e, simulator, w);
        // Exact double equality: reduction order must not depend on the
        // thread count.
        EXPECT_EQ(r.cycles, base.cycles) << t << " threads";
        EXPECT_EQ(r.threadInsts, base.threadInsts) << t << " threads";
        EXPECT_EQ(r.dramUtilPct, base.dramUtilPct) << t << " threads";
        ASSERT_EQ(r.perKernel.size(), base.perKernel.size());
        for (size_t i = 0; i < r.perKernel.size(); ++i)
            EXPECT_EQ(r.perKernel[i].cycles, base.perKernel[i].cycles);
    }
}

TEST(SimEngine, SelectionProjectionBitIdenticalAcrossThreadCounts)
{
    GpuSimulator simulator(voltaV100());
    Workload w = mixedWorkload(24);

    pka::core::SelectionOutcome sel;
    for (uint32_t rep : {0u, 1u, 5u, 10u}) {
        pka::core::KernelGroup g;
        g.representative = rep;
        g.weight = 6.0;
        sel.groups.push_back(g);
    }
    pka::core::PkpOptions pkp;

    SimEngine e1(engineOpts(1, false));
    pka::core::AppProjection base =
        pka::core::simulateSelection(e1, simulator, w, sel, &pkp);
    ASSERT_GT(base.projectedCycles, 0.0);

    for (unsigned t : {2u, 8u}) {
        SimEngine e(engineOpts(t, false));
        pka::core::AppProjection r =
            pka::core::simulateSelection(e, simulator, w, sel, &pkp);
        EXPECT_EQ(r.projectedCycles, base.projectedCycles);
        EXPECT_EQ(r.projectedThreadInsts, base.projectedThreadInsts);
        EXPECT_EQ(r.projectedDramUtilPct, base.projectedDramUtilPct);
        EXPECT_EQ(r.simulatedCycles, base.simulatedCycles);
    }
}

TEST(SimEngine, ContentSeedCachesIdenticalLaunches)
{
    GpuSimulator simulator(voltaV100());
    constexpr size_t kLaunches = 8;
    Workload w = repeatedWorkload(kLaunches);

    // threads=1 so the counters are exact (no concurrent first-misses).
    SimEngine cached(engineOpts(1, true, /*content_seed=*/true));
    pka::core::FullSimResult on =
        pka::core::fullSimulate(cached, simulator, w);
    EXPECT_EQ(on.cacheMisses, 1u);
    EXPECT_EQ(on.cacheHits, kLaunches - 1);
    EXPECT_EQ(cached.cacheSize(), 1u);

    // Cached results are the same bits the simulator would produce.
    SimEngine uncached(engineOpts(1, false, /*content_seed=*/true));
    pka::core::FullSimResult off =
        pka::core::fullSimulate(uncached, simulator, w);
    EXPECT_EQ(off.cacheHits, 0u);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.threadInsts, off.threadInsts);
    EXPECT_EQ(on.dramUtilPct, off.dramUtilPct);
}

TEST(SimEngine, LaunchIdSeedingNeverManufacturesHits)
{
    GpuSimulator simulator(voltaV100());
    constexpr size_t kLaunches = 6;
    Workload w = repeatedWorkload(kLaunches);

    // Default seeding salts with launchId: identical-content launches
    // still jitter independently, so every launch must actually simulate.
    SimEngine engine(engineOpts(1, true, /*content_seed=*/false));
    pka::core::FullSimResult r =
        pka::core::fullSimulate(engine, simulator, w);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.cacheMisses, kLaunches);
    EXPECT_EQ(engine.cacheSize(), kLaunches);

    // Re-running the same stream hits every entry (same launchIds).
    pka::core::FullSimResult again =
        pka::core::fullSimulate(engine, simulator, w);
    EXPECT_EQ(again.cacheHits, kLaunches);
    EXPECT_EQ(again.cycles, r.cycles);
}

TEST(SimEngine, StopPolicyConfigKeyedSeparately)
{
    GpuSimulator simulator(voltaV100());
    Workload w = repeatedWorkload(1);
    // Long enough that PKP actually truncates (different result bits).
    w.launches[0].iterations = 64;
    w.launches[0].grid = {512, 1, 1};

    SimEngine engine(engineOpts(1, true));
    SimJob plain;
    plain.kernel = &w.launches[0];
    plain.workloadSeed = w.seed;

    SimJob pkp_job = plain;
    pka::core::PkpOptions pkp;
    pkp_job.makeStop = [pkp] {
        return std::make_unique<pka::core::IpcStabilityController>(pkp);
    };
    pkp_job.stopConfigKey = pka::core::pkpStopConfigKey(pkp);
    ASSERT_NE(pkp_job.stopConfigKey, 0u);

    KernelSimResult full = engine.simulateOne(simulator, plain);
    KernelSimResult early = engine.simulateOne(simulator, pkp_job);
    EXPECT_EQ(engine.cacheMisses(), 2u);
    EXPECT_EQ(engine.cacheHits(), 0u);
    EXPECT_LT(early.cycles, full.cycles); // PKP stopped early

    // Each variant now hits its own entry.
    EXPECT_EQ(engine.simulateOne(simulator, plain).cycles, full.cycles);
    EXPECT_EQ(engine.simulateOne(simulator, pkp_job).cycles,
              early.cycles);
    EXPECT_EQ(engine.cacheHits(), 2u);

    // Different stop threshold, different key: a third miss.
    pka::core::PkpOptions loose;
    loose.threshold = 2.5;
    SimJob loose_job = plain;
    loose_job.makeStop = [loose] {
        return std::make_unique<pka::core::IpcStabilityController>(loose);
    };
    loose_job.stopConfigKey = pka::core::pkpStopConfigKey(loose);
    EXPECT_NE(loose_job.stopConfigKey, pkp_job.stopConfigKey);
    engine.simulateOne(simulator, loose_job);
    EXPECT_EQ(engine.cacheMisses(), 3u);
}

TEST(SimEngine, ClearCacheResetsCountersAndEntries)
{
    GpuSimulator simulator(voltaV100());
    Workload w = repeatedWorkload(3);
    SimEngine engine(engineOpts(1, true, true));
    pka::core::fullSimulate(engine, simulator, w);
    EXPECT_GT(engine.cacheSize(), 0u);
    engine.clearCache();
    EXPECT_EQ(engine.cacheSize(), 0u);
    EXPECT_EQ(engine.cacheHits(), 0u);
    EXPECT_EQ(engine.cacheMisses(), 0u);
}

TEST(SimEngine, BigKernelBorrowsIdleWorkersForShardTeam)
{
    GpuSimulator simulator(voltaV100());
    // 800 CTAs x 8 warps x 11 insts x 40 iters = 2.8M warp insts
    // (clears kIntraKernelMinWarpInsts) at 80 warps/SM (clears
    // kIntraKernelMinWarpsPerSm).
    KernelDescriptor k = makeLaunch(jitterProg("big"), 0, 800, 40, 0.0);
    k.block = {256, 1, 1};
    ASSERT_GE(k.totalWarpInstructions(), kIntraKernelMinWarpInsts);
    std::vector<SimJob> jobs(1);
    jobs[0].kernel = &k;
    jobs[0].workloadSeed = 11;

    EngineOptions never = engineOpts(4, false);
    never.smThreads = 1;
    SimEngine serial(never);
    EngineStats ss;
    auto base = serial.run(simulator, jobs, &ss);
    EXPECT_EQ(ss.shardedLaunches, 0u);
    EXPECT_TRUE(ss.intraShardBusyMs.empty());

    // One job on a 4-thread pool: the task's own slot plus three idle
    // ones make a 4-shard team.
    SimEngine engine(engineOpts(4, false));
    EngineStats st;
    auto sharded = engine.run(simulator, jobs, &st);
    EXPECT_EQ(st.shardedLaunches, 1u);
    EXPECT_EQ(st.intraShardBusyMs.size(), 4u);
    for (double ms : st.intraShardBusyMs)
        EXPECT_GT(ms, 0.0);

    // The team size must never leak into the result bits.
    ASSERT_EQ(base.size(), sharded.size());
    EXPECT_EQ(base[0].cycles, sharded[0].cycles);
    EXPECT_EQ(base[0].threadInstructions, sharded[0].threadInstructions);
    EXPECT_EQ(base[0].warpInstructions, sharded[0].warpInstructions);
    EXPECT_EQ(base[0].dramUtilPct, sharded[0].dramUtilPct);
    EXPECT_EQ(base[0].l2MissPct, sharded[0].l2MissPct);
}

TEST(SimEngine, SparseKernelStaysOnSequentialCore)
{
    GpuSimulator simulator(voltaV100());
    // One warp per SM for thousands of iterations: clears the
    // warp-instruction floor but offers each shard at most one tick per
    // epoch, so the density gate must keep it on the sequential core.
    KernelDescriptor k =
        makeLaunch(jitterProg("sparse"), 0, 80, 3000, 0.0);
    k.block = {32, 1, 1};
    ASSERT_GE(k.totalWarpInstructions(), kIntraKernelMinWarpInsts);
    ASSERT_LT(k.numCtas() * k.warpsPerCta(),
              kIntraKernelMinWarpsPerSm * simulator.spec().numSms);
    std::vector<SimJob> jobs(1);
    jobs[0].kernel = &k;
    jobs[0].workloadSeed = 12;

    SimEngine engine(engineOpts(4, false));
    EngineStats st;
    auto r = engine.run(simulator, jobs, &st);
    EXPECT_EQ(st.shardedLaunches, 0u);
    EXPECT_TRUE(st.intraShardBusyMs.empty());
    ASSERT_EQ(r.size(), 1u);
    EXPECT_TRUE(r[0].shardBusyMs.empty());
}
