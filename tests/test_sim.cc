/**
 * @file
 * Cycle-level simulator tests: memory-model timing and accounting, IPC
 * tracking, SM/warp execution invariants, early-stop and truncation
 * mechanisms, determinism, and device-scaling properties.
 */

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hh"
#include "common/rng.hh"
#include "core/pkp.hh"
#include "silicon/gpu_spec.hh"
#include "sim/fnv.hh"
#include "sim/ipc_tracker.hh"
#include "sim/memory_model.hh"
#include "sim/simulator.hh"
#include "sim/sm_core.hh"
#include "sim/timing_wheel.hh"
#include "sim/trace.hh"
#include "workload/builder.hh"
#include "workload/suites.hh"

using namespace pka::sim;
using namespace pka::workload;
using pka::silicon::voltaV100;
using pka::silicon::withSmCount;

namespace
{

ProgramPtr
computeProg()
{
    return ProgramBuilder("compute")
        .seg(InstrClass::FpAlu, 16)
        .seg(InstrClass::IntAlu, 4)
        .build();
}

ProgramPtr
memProg(double l1 = 0.2, double l2 = 0.3)
{
    return ProgramBuilder("mem")
        .seg(InstrClass::GlobalLoad, 4)
        .seg(InstrClass::IntAlu, 2)
        .seg(InstrClass::GlobalStore, 2)
        .mem(4.0, l1, l2)
        .build();
}

KernelDescriptor
makeKernel(ProgramPtr p, uint32_t ctas, uint32_t threads, uint32_t iters)
{
    KernelDescriptor k;
    k.program = std::move(p);
    k.grid = {ctas, 1, 1};
    k.block = {threads, 1, 1};
    k.iterations = iters;
    k.regsPerThread = 32;
    return k;
}

} // namespace

TEST(MemoryModel, HigherLocalityIsFaster)
{
    auto spec = voltaV100();
    MemoryModel mem(spec, 1);
    auto hot = memProg(0.95, 0.95);
    auto cold = memProg(0.0, 0.0);
    // Average across draws to smooth the stochastic spread.
    double lat_hot = 0, lat_cold = 0;
    for (uint64_t c = 0; c < 64; ++c) {
        lat_hot += static_cast<double>(mem.access(*hot, c * 10000));
        lat_cold += static_cast<double>(mem.access(*cold, c * 10000));
    }
    EXPECT_LT(lat_hot, lat_cold);
}

TEST(MemoryModel, AccountsDramTraffic)
{
    auto spec = voltaV100();
    MemoryModel mem(spec, 1);
    auto p = memProg(0.0, 0.0); // every sector goes to DRAM
    mem.access(*p, 0);
    // 4 sectors/access x 32B, all missing to DRAM.
    EXPECT_NEAR(mem.dramBytes(), 4.0 * 32.0, 1e-9);
    EXPECT_NEAR(mem.l2MissPct(), 100.0, 1e-9);
}

TEST(MemoryModel, PerfectLocalityTrafficVanishesOnceWarm)
{
    auto spec = voltaV100();
    MemoryModel mem(spec, 1);
    auto p = memProg(1.0, 1.0);
    // Cold caches generate some early DRAM traffic...
    for (int i = 0; i < 200000; ++i)
        mem.access(*p, i);
    double cold = mem.dramBytes();
    EXPECT_GT(cold, 0.0);
    // ...but a warmed cache with perfect locality adds almost nothing.
    for (int i = 0; i < 1000; ++i)
        mem.access(*p, 200000 + i);
    EXPECT_LT(mem.dramBytes() - cold, 1000.0);
}

TEST(MemoryModel, CongestionGrowsUnderBurst)
{
    auto spec = voltaV100();
    MemoryModel mem(spec, 1);
    auto p = memProg(0.0, 0.0);
    // Burst at the same cycle: queueing delay must grow.
    uint64_t first = mem.access(*p, 0);
    uint64_t last = first;
    for (int i = 0; i < 400; ++i)
        last = mem.access(*p, 0);
    EXPECT_GT(last, first);
}

TEST(MemoryModel, ResetClearsCounters)
{
    auto spec = voltaV100();
    MemoryModel mem(spec, 1);
    mem.access(*memProg(0.0, 0.0), 0);
    mem.reset();
    EXPECT_DOUBLE_EQ(mem.dramBytes(), 0.0);
    EXPECT_DOUBLE_EQ(mem.l2MissPct(), 0.0);
}

TEST(IpcTracker, BucketsAndWindow)
{
    IpcTracker t(10, 4, false);
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(t.push(5.0));
    EXPECT_TRUE(t.push(5.0)); // completes bucket 1
    EXPECT_DOUBLE_EQ(t.lastBucketIpc(), 5.0);
    EXPECT_FALSE(t.windowFull());
    for (int b = 0; b < 3; ++b)
        for (int i = 0; i < 10; ++i)
            t.push(5.0);
    EXPECT_TRUE(t.windowFull());
    EXPECT_DOUBLE_EQ(t.windowMean(), 5.0);
    EXPECT_DOUBLE_EQ(t.windowStd(), 0.0);
}

TEST(IpcTracker, IdleAdvanceCompletesBuckets)
{
    IpcTracker t(10, 4, false);
    t.push(100.0);
    t.advanceIdle(25);
    EXPECT_EQ(t.cycles(), 26u);
    // Two buckets completed: first holds 100 insts / 10 cycles.
    EXPECT_DOUBLE_EQ(t.lastBucketIpc(), 0.0);
}

TEST(IpcTracker, TraceRecordsSamples)
{
    IpcTracker t(5, 2, true);
    for (int i = 0; i < 20; ++i)
        t.push(2.0);
    EXPECT_EQ(t.trace().size(), 4u);
    t.annotateLastSample(40.0, 60.0);
    EXPECT_DOUBLE_EQ(t.trace().back().l2MissPct, 40.0);
    EXPECT_DOUBLE_EQ(t.trace().back().dramUtilPct, 60.0);
}

TEST(IpcTracker, ZeroBucketPanics)
{
    EXPECT_DEATH(IpcTracker(0, 4, false), "bucket");
}

TEST(Simulator, AllCtasFinish)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 200, 128, 4);
    auto r = s.simulateKernel(k, 1);
    EXPECT_EQ(r.finishedCtas, 200u);
    EXPECT_EQ(r.totalCtas, 200u);
    EXPECT_EQ(r.inFlightCtas, 0u);
    EXPECT_FALSE(r.stoppedEarly);
    EXPECT_FALSE(r.truncatedByBudget);
}

TEST(Simulator, ExecutesExpectedInstructionCount)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 50, 128, 3);
    auto r = s.simulateKernel(k, 1);
    // No ctaWorkCv: warp instructions are exact.
    EXPECT_EQ(r.warpInstructions, k.totalWarpInstructions());
    EXPECT_NEAR(r.threadInstructions,
                static_cast<double>(k.totalWarpInstructions()) * 32.0, 1.0);
}

TEST(Simulator, Deterministic)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 100, 256, 4);
    k.ctaWorkCv = 0.5;
    auto a = s.simulateKernel(k, 9);
    auto b = s.simulateKernel(k, 9);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warpInstructions, b.warpInstructions);
}

TEST(Simulator, SeedAffectsIrregularKernels)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 100, 256, 8);
    k.ctaWorkCv = 0.8;
    auto a = s.simulateKernel(k, 1);
    auto b = s.simulateKernel(k, 2);
    EXPECT_NE(a.warpInstructions, b.warpInstructions);
}

TEST(Simulator, MoreSmsIsFaster)
{
    GpuSimulator big(voltaV100());
    GpuSimulator small(withSmCount(voltaV100(), 20));
    auto k = makeKernel(computeProg(), 640, 256, 8);
    EXPECT_LT(big.simulateKernel(k, 1).cycles,
              small.simulateKernel(k, 1).cycles);
}

TEST(Simulator, BreadthFirstDispatchUsesAllSms)
{
    // 80 single-warp CTAs on 80 SMs must run concurrently: the kernel
    // should take barely more than one CTA's latency, not 80x.
    GpuSimulator s(voltaV100());
    auto one = makeKernel(computeProg(), 1, 32, 64);
    auto eighty = makeKernel(computeProg(), 80, 32, 64);
    auto r1 = s.simulateKernel(one, 1);
    auto r80 = s.simulateKernel(eighty, 1);
    EXPECT_LT(r80.cycles, r1.cycles * 2);
}

TEST(Simulator, InstructionBudgetTruncates)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 400, 256, 16);
    SimOptions opts;
    opts.maxThreadInstructions = 100000;
    auto r = s.simulateKernel(k, 1, opts);
    EXPECT_TRUE(r.truncatedByBudget);
    EXPECT_LT(r.finishedCtas, r.totalCtas);
    EXPECT_GE(r.threadInstructions, 100000.0);
}

TEST(Simulator, CycleCapTruncates)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 400, 256, 16);
    SimOptions opts;
    opts.maxCycles = 500;
    auto r = s.simulateKernel(k, 1, opts);
    EXPECT_TRUE(r.truncatedByBudget);
}

TEST(Simulator, TraceMatchesCycleCount)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 300, 256, 8);
    SimOptions opts;
    opts.traceIpc = true;
    auto r = s.simulateKernel(k, 1, opts);
    ASSERT_FALSE(r.trace.empty());
    for (const auto &sample : r.trace) {
        EXPECT_GE(sample.ipc, 0.0);
        EXPECT_GE(sample.dramUtilPct, 0.0);
        EXPECT_LE(sample.dramUtilPct, 100.0);
    }
    // Bucketed trace must cover roughly the simulated span.
    EXPECT_NEAR(static_cast<double>(r.trace.back().cycle),
                static_cast<double>(r.cycles),
                static_cast<double>(opts.ipcBucketCycles) +
                    voltaV100().launchOverheadCycles + 1);
}

namespace
{

/** Stop controller that fires after a fixed number of bucket polls. */
class CountdownStop : public StopController
{
  public:
    explicit CountdownStop(int polls) : remaining_(polls) {}

    void beginKernel(const Snapshot &) override {}

    bool
    shouldStop(const Snapshot &) override
    {
        return --remaining_ <= 0;
    }

  private:
    int remaining_;
};

} // namespace

TEST(Simulator, StopControllerTerminatesEarly)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 2000, 256, 16);
    auto full = s.simulateKernel(k, 1);

    CountdownStop stop(3);
    SimOptions opts;
    opts.stop = &stop;
    auto r = s.simulateKernel(k, 1, opts);
    EXPECT_TRUE(r.stoppedEarly);
    EXPECT_LT(r.cycles, full.cycles);
    EXPECT_LT(r.finishedCtas, r.totalCtas);
    EXPECT_EQ(r.finishedCtas + r.inFlightCtas,
              std::min<uint64_t>(r.totalCtas,
                                 r.finishedCtas + r.inFlightCtas));
}

TEST(Simulator, SnapshotExposesWaveSize)
{
    struct Capture : StopController
    {
        Snapshot last;
        void beginKernel(const Snapshot &s) override { last = s; }
        bool
        shouldStop(const Snapshot &s) override
        {
            last = s;
            return false;
        }
    } capture;

    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 100, 256, 2);
    SimOptions opts;
    opts.stop = &capture;
    s.simulateKernel(k, 1, opts);
    EXPECT_EQ(capture.last.totalCtas, 100u);
    EXPECT_GT(capture.last.waveSize, 0u);
}

TEST(Simulator, MemoryBoundKernelReportsDramUtil)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(0.0, 0.1), 500, 256, 8);
    auto r = s.simulateKernel(k, 1);
    EXPECT_GT(r.dramUtilPct, 10.0);
    EXPECT_GT(r.l2MissPct, 50.0);
}

TEST(Simulator, ComputeBoundKernelLeavesDramIdle)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 500, 256, 8);
    auto r = s.simulateKernel(k, 1);
    EXPECT_DOUBLE_EQ(r.dramUtilPct, 0.0);
}

TEST(Simulator, IpcRampVisibleInTrace)
{
    GpuSimulator s(voltaV100());
    // One wave only: occupancy ramps, then drains.
    auto k = makeKernel(memProg(), 4000, 256, 12);
    SimOptions opts;
    opts.traceIpc = true;
    auto r = s.simulateKernel(k, 1, opts);
    ASSERT_GT(r.trace.size(), 10u);
    // Steady-state IPC (middle) should exceed the first bucket (ramp).
    double first = r.trace.front().ipc;
    double mid = r.trace[r.trace.size() / 2].ipc;
    EXPECT_GT(mid, first);
}

/** Determinism across every suite-provided workload kernel shape. */
class SimWorkloadProperty
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SimWorkloadProperty, FirstKernelDeterministicAndComplete)
{
    auto w = buildWorkload(GetParam());
    ASSERT_TRUE(w.has_value());
    GpuSimulator s(voltaV100());
    auto a = s.simulateKernel(w->launches[0], w->seed);
    auto b = s.simulateKernel(w->launches[0], w->seed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.finishedCtas, a.totalCtas);
    EXPECT_GT(a.ipc(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SimWorkloadProperty,
                         ::testing::Values("backprop", "bfs1MW", "histo",
                                           "sgemm", "fdtd2d", "lavaMD",
                                           "spmv", "gemm_inf_in0",
                                           "rnn_inf_tc_in2", "nw"));

TEST(Simulator, GtoSchedulerRunsToCompletion)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 120, 256, 6);
    SimOptions opts;
    opts.scheduler = SchedulerPolicy::Gto;
    auto r = s.simulateKernel(k, 3, opts);
    EXPECT_EQ(r.finishedCtas, r.totalCtas);
    EXPECT_EQ(r.warpInstructions, k.totalWarpInstructions());
}

TEST(Simulator, SchedulerPoliciesDiffer)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 400, 256, 8);
    SimOptions lrr, gto;
    gto.scheduler = SchedulerPolicy::Gto;
    auto a = s.simulateKernel(k, 3, lrr);
    auto b = s.simulateKernel(k, 3, gto);
    // Same work either way; timing may differ but not wildly.
    EXPECT_EQ(a.warpInstructions, b.warpInstructions);
    EXPECT_NE(a.cycles, 0u);
    EXPECT_LT(static_cast<double>(b.cycles),
              static_cast<double>(a.cycles) * 2.0);
    EXPECT_GT(static_cast<double>(b.cycles),
              static_cast<double>(a.cycles) * 0.5);
}

TEST(Simulator, GtoDeterministic)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 100, 256, 4);
    k.ctaWorkCv = 0.4;
    SimOptions opts;
    opts.scheduler = SchedulerPolicy::Gto;
    auto a = s.simulateKernel(k, 9, opts);
    auto b = s.simulateKernel(k, 9, opts);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Trace, CaptureMatchesLiveSimulation)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 150, 256, 6);
    k.ctaWorkCv = 0.7;
    auto live = s.simulateKernel(k, 42);

    KernelTrace trace = captureTrace(k, 42);
    SimOptions opts;
    opts.trace = &trace;
    // Replaying the trace with a DIFFERENT seed still reproduces the
    // traced run's work exactly.
    auto replay = s.simulateKernel(k, 42, opts);
    EXPECT_EQ(replay.warpInstructions, live.warpInstructions);
    EXPECT_EQ(replay.cycles, live.cycles);
}

TEST(Trace, RoundTripThroughText)
{
    auto k1 = makeKernel(memProg(), 300, 256, 6);
    k1.ctaWorkCv = 0.5;
    k1.launchId = 0;
    auto k2 = makeKernel(computeProg(), 64, 128, 3);
    k2.launchId = 1;
    std::vector<KernelTrace> traces = {captureTrace(k1, 7),
                                       captureTrace(k2, 7)};
    std::stringstream ss;
    writeTraces(ss, traces);
    auto back = readTraces(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].ctaIterations, traces[0].ctaIterations);
    EXPECT_EQ(back[1].ctaIterations, traces[1].ctaIterations);
    EXPECT_EQ(back[1].kernelName, "compute");
    // Regular kernel encodes as a single run.
    EXPECT_EQ(back[1].ctaIterations.size(), 64u);
}

TEST(Trace, RegularKernelTraceIsConstant)
{
    auto k = makeKernel(computeProg(), 20, 128, 5);
    KernelTrace t = captureTrace(k, 1);
    for (uint32_t it : t.ctaIterations)
        EXPECT_EQ(it, 5u);
}

TEST(Trace, MismatchedTraceThrowsBadInput)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 20, 128, 5);
    auto other = makeKernel(computeProg(), 40, 128, 5);
    KernelTrace t = captureTrace(other, 1);
    SimOptions opts;
    opts.trace = &t;
    try {
        s.simulateKernel(k, 1, opts);
        FAIL() << "mismatched trace must throw";
    } catch (const pka::common::TaskException &ex) {
        EXPECT_EQ(ex.kind(), pka::common::ErrorKind::kBadInput);
        EXPECT_THAT(ex.what(), testing::HasSubstr("CTA count"));
    }
}

TEST(Trace, RejectsMalformedFile)
{
    std::stringstream bad("garbage\n");
    EXPECT_DEATH(readTraces(bad), "magic");
}

TEST(TimingWheel, DrainsAscendingAndHandlesOverflow)
{
    TimingWheel w(4); // 16-slot wheel: wake 1000 spills to overflow
    w.schedule(0, 3, 7);
    w.schedule(0, 3, 2);
    w.schedule(0, 5, 9);
    w.schedule(0, 1000, 4);
    EXPECT_EQ(w.nextWake(), 3u);

    std::vector<uint32_t> out;
    w.drain(3, out);
    ASSERT_EQ(out.size(), 2u); // ascending id, like the heap it replaced
    EXPECT_EQ(out[0], 2u);
    EXPECT_EQ(out[1], 7u);
    EXPECT_EQ(w.nextWake(), 5u);

    w.drain(4, out);
    EXPECT_TRUE(out.empty());
    w.drain(5, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 9u);
    EXPECT_EQ(w.nextWake(), 1000u); // overflow entry surfaces
    w.drain(1000, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 4u);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.nextWake(), UINT64_MAX);
}

namespace
{

/** Bit-exact digest of a simulation result, trace series included. */
uint64_t
hashResult(const KernelSimResult &r)
{
    Fnv f;
    f.u64(r.cycles);
    f.f64(r.threadInstructions);
    f.u64(r.warpInstructions);
    f.u64(r.finishedCtas);
    f.u64(r.inFlightCtas);
    f.u64(r.totalCtas);
    f.u64(r.waveSize);
    f.u64(r.expectedWarpInstructions);
    f.u64(r.stoppedEarly ? 1 : 0);
    f.u64(r.truncatedByBudget ? 1 : 0);
    f.f64(r.dramUtilPct);
    f.f64(r.l2MissPct);
    f.u64(r.trace.size());
    for (const auto &s : r.trace) {
        f.u64(s.cycle);
        f.f64(s.ipc);
        f.f64(s.l2MissPct);
        f.f64(s.dramUtilPct);
    }
    return f.h;
}

/** Field-by-field identity check (readable failures) plus the digest. */
void
expectIdentical(const KernelSimResult &ref, const KernelSimResult &ev)
{
    EXPECT_EQ(ref.cycles, ev.cycles);
    EXPECT_EQ(ref.warpInstructions, ev.warpInstructions);
    EXPECT_EQ(ref.finishedCtas, ev.finishedCtas);
    EXPECT_EQ(ref.inFlightCtas, ev.inFlightCtas);
    EXPECT_EQ(ref.stoppedEarly, ev.stoppedEarly);
    EXPECT_EQ(ref.truncatedByBudget, ev.truncatedByBudget);
    EXPECT_EQ(ref.trace.size(), ev.trace.size());
    EXPECT_EQ(hashResult(ref), hashResult(ev)); // bit-exact doubles too
}

/** Run one launch under both cores and demand identical results. */
void
runBothCores(const KernelDescriptor &k, uint64_t seed, SimOptions opts)
{
    GpuSimulator s(voltaV100());
    opts.referenceCore = true;
    auto ref = s.simulateKernel(k, seed, opts);
    opts.referenceCore = false;
    auto ev = s.simulateKernel(k, seed, opts);
    expectIdentical(ref, ev);
}

} // namespace

TEST(SimCoreEquivalence, GoldenHashAcrossKernelMix)
{
    // A fixed mix covering the simulator's regimes: compute-bound,
    // memory-bound, latency-bound low-occupancy, small grid, irregular
    // CTA work, both schedulers, budgets and tracing. The two cores
    // must agree on every result bit (the digest covers doubles).
    GpuSimulator s(voltaV100());
    struct Case
    {
        KernelDescriptor k;
        uint64_t seed;
        SimOptions opts;
    };
    std::vector<Case> cases;
    cases.push_back({makeKernel(computeProg(), 200, 128, 4), 1, {}});
    cases.push_back({makeKernel(memProg(), 300, 256, 8), 2, {}});
    cases.push_back({makeKernel(memProg(0.0, 0.0), 40, 64, 6), 3, {}});
    cases.push_back({makeKernel(computeProg(), 12, 64, 3), 4, {}});
    {
        Case c{makeKernel(memProg(), 150, 256, 6), 5, {}};
        c.k.ctaWorkCv = 0.7;
        c.opts.scheduler = SchedulerPolicy::Gto;
        cases.push_back(c);
    }
    {
        Case c{makeKernel(memProg(0.1, 0.2), 400, 256, 8), 6, {}};
        c.opts.traceIpc = true;
        cases.push_back(c);
    }
    {
        Case c{makeKernel(computeProg(), 400, 256, 16), 7, {}};
        c.opts.maxThreadInstructions = 100000;
        cases.push_back(c);
    }
    {
        Case c{makeKernel(computeProg(), 400, 256, 16), 8, {}};
        c.opts.maxCycles = 500;
        cases.push_back(c);
    }

    Fnv ref_digest, ev_digest;
    for (auto &c : cases) {
        c.opts.referenceCore = true;
        ref_digest.u64(hashResult(s.simulateKernel(c.k, c.seed, c.opts)));
        c.opts.referenceCore = false;
        ev_digest.u64(hashResult(s.simulateKernel(c.k, c.seed, c.opts)));
    }
    EXPECT_EQ(ref_digest.h, ev_digest.h);
}

TEST(SimCoreEquivalence, RandomizedKernels)
{
    // Property check: for randomized launch shapes across both
    // scheduler policies and option mixes, the event core reproduces
    // the reference core exactly. PCG32 keeps the draw sequence (and so
    // the covered cases) identical on every platform.
    auto rng = pka::common::Rng::forKey(2026, 8, 5);
    for (int i = 0; i < 30; ++i) {
        ProgramPtr p;
        switch (rng.uniformInt(3)) {
          case 0:
            p = computeProg();
            break;
          case 1:
            p = memProg(rng.uniform(), rng.uniform());
            break;
          default:
            p = ProgramBuilder("latency")
                    .seg(InstrClass::GlobalLoad, 6)
                    .seg(InstrClass::Sfu, 2)
                    .mem(4.0, 0.05, 0.1)
                    .build();
            break;
        }
        const uint32_t threads = 32u << rng.uniformInt(4);
        auto k = makeKernel(std::move(p), 1 + rng.uniformInt(400),
                            threads, 1 + rng.uniformInt(8));
        if (rng.uniformInt(2))
            k.ctaWorkCv = rng.uniform(0.0, 0.8);
        SimOptions opts;
        if (rng.uniformInt(2))
            opts.scheduler = SchedulerPolicy::Gto;
        if (rng.uniformInt(3) == 0)
            opts.traceIpc = true;
        if (rng.uniformInt(4) == 0)
            opts.maxThreadInstructions = 20000 + rng.uniformInt(200000);
        if (rng.uniformInt(4) == 0)
            opts.maxCycles = 200 + rng.uniformInt(20000);
        if (rng.uniformInt(2))
            opts.contentSeed = true;
        runBothCores(k, rng.nextU64(), opts);
    }
}

TEST(SimCoreEquivalence, CountdownStopIdentical)
{
    // Stateful stop controller: the event core must poll it at exactly
    // the reference core's bucket boundaries or the countdown drifts.
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 2000, 256, 16);
    SimOptions opts;
    CountdownStop ref_stop(5);
    opts.stop = &ref_stop;
    opts.referenceCore = true;
    auto ref = s.simulateKernel(k, 1, opts);
    CountdownStop ev_stop(5);
    opts.stop = &ev_stop;
    opts.referenceCore = false;
    auto ev = s.simulateKernel(k, 1, opts);
    EXPECT_TRUE(ref.stoppedEarly);
    expectIdentical(ref, ev);
}

TEST(SimCoreEquivalence, PkpEarlyStopIdentical)
{
    // The paper's IPC-stability detector, fresh per run: stop decisions
    // hang off the rolling window, which both cores must feed the same
    // per-bucket IPC series.
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 6000, 256, 12);
    SimOptions opts;
    pka::core::IpcStabilityController ref_stop;
    opts.stop = &ref_stop;
    opts.referenceCore = true;
    auto ref = s.simulateKernel(k, 11, opts);
    pka::core::IpcStabilityController ev_stop;
    opts.stop = &ev_stop;
    opts.referenceCore = false;
    auto ev = s.simulateKernel(k, 11, opts);
    EXPECT_TRUE(ref.stoppedEarly);
    expectIdentical(ref, ev);
}

TEST(SimCoreEquivalence, TracedReplayIdentical)
{
    auto k = makeKernel(memProg(), 150, 256, 6);
    k.ctaWorkCv = 0.7;
    KernelTrace trace = captureTrace(k, 42);
    SimOptions opts;
    opts.trace = &trace;
    runBothCores(k, 99, opts); // replay seed differs from capture seed
}

TEST(SimCoreEquivalence, TraceIpcSeriesIdentical)
{
    // The Figure-5 sample series must match sample for sample,
    // including the L2/DRAM annotations computed at bucket boundaries.
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(0.1, 0.3), 800, 256, 8);
    SimOptions opts;
    opts.traceIpc = true;
    opts.referenceCore = true;
    auto ref = s.simulateKernel(k, 4, opts);
    opts.referenceCore = false;
    auto ev = s.simulateKernel(k, 4, opts);
    ASSERT_EQ(ref.trace.size(), ev.trace.size());
    ASSERT_FALSE(ref.trace.empty());
    for (size_t i = 0; i < ref.trace.size(); ++i) {
        EXPECT_EQ(ref.trace[i].cycle, ev.trace[i].cycle) << i;
        EXPECT_EQ(ref.trace[i].ipc, ev.trace[i].ipc) << i;
        EXPECT_EQ(ref.trace[i].l2MissPct, ev.trace[i].l2MissPct) << i;
        EXPECT_EQ(ref.trace[i].dramUtilPct, ev.trace[i].dramUtilPct)
            << i;
    }
}

namespace
{

/**
 * Run one launch sequentially and under the sharded core at each of
 * `threads`, demanding a bit-identical result every time. The sharded
 * core's contract is exactly the event core's: any thread count, same
 * bits.
 */
void
expectShardedIdentical(const KernelDescriptor &k, uint64_t seed,
                       SimOptions opts,
                       std::initializer_list<uint32_t> threads = {2, 4,
                                                                  8})
{
    GpuSimulator s(voltaV100());
    opts.referenceCore = false;
    opts.intraKernelThreads = 1;
    auto seq = s.simulateKernel(k, seed, opts);
    for (uint32_t t : threads) {
        opts.intraKernelThreads = t;
        auto par = s.simulateKernel(k, seed, opts);
        expectIdentical(seq, par);
        EXPECT_EQ(par.shardBusyMs.size(),
                  std::min<size_t>(t, voltaV100().numSms))
            << "threads=" << t;
    }
}

} // namespace

TEST(SimCoreParallel, GoldenHashAcrossKernelMix)
{
    // The SimCoreEquivalence mix, sequential event core vs the sharded
    // core at 1/2/4/8 threads: compute-bound (saturated fast path),
    // memory-bound (staged accesses + parked wakes), latency-bound
    // low-occupancy (epoch skipping), small grids (shards with a
    // single SM's worth of work), GTO, irregular CTA work, budgets and
    // tracing.
    expectShardedIdentical(makeKernel(computeProg(), 200, 128, 4), 1,
                           {});
    expectShardedIdentical(makeKernel(memProg(), 300, 256, 8), 2, {});
    expectShardedIdentical(makeKernel(memProg(0.0, 0.0), 40, 64, 6), 3,
                           {});
    expectShardedIdentical(makeKernel(computeProg(), 12, 64, 3), 4, {});
    {
        auto k = makeKernel(memProg(), 150, 256, 6);
        k.ctaWorkCv = 0.7;
        SimOptions opts;
        opts.scheduler = SchedulerPolicy::Gto;
        expectShardedIdentical(k, 5, opts);
    }
    {
        SimOptions opts;
        opts.traceIpc = true;
        expectShardedIdentical(makeKernel(memProg(0.1, 0.2), 400, 256, 8),
                               6, opts);
    }
}

TEST(SimCoreParallel, RandomizedKernels)
{
    // Property check mirroring SimCoreEquivalence.RandomizedKernels,
    // with the thread count drawn too (2..16, beyond any shard-count
    // sweet spot — including more threads than busy SMs).
    auto rng = pka::common::Rng::forKey(2026, 8, 8);
    for (int i = 0; i < 12; ++i) {
        ProgramPtr p;
        switch (rng.uniformInt(3)) {
          case 0:
            p = computeProg();
            break;
          case 1:
            p = memProg(rng.uniform(), rng.uniform());
            break;
          default:
            p = ProgramBuilder("latency")
                    .seg(InstrClass::GlobalLoad, 6)
                    .seg(InstrClass::Sfu, 2)
                    .mem(4.0, 0.05, 0.1)
                    .build();
            break;
        }
        const uint32_t threads = 32u << rng.uniformInt(4);
        auto k = makeKernel(std::move(p), 1 + rng.uniformInt(400),
                            threads, 1 + rng.uniformInt(8));
        if (rng.uniformInt(2))
            k.ctaWorkCv = rng.uniform(0.0, 0.8);
        SimOptions opts;
        if (rng.uniformInt(2))
            opts.scheduler = SchedulerPolicy::Gto;
        if (rng.uniformInt(3) == 0)
            opts.traceIpc = true;
        if (rng.uniformInt(2))
            opts.contentSeed = true;
        expectShardedIdentical(k, rng.nextU64(), opts,
                               {2 + rng.uniformInt(15)});
    }
}

TEST(SimCoreParallel, EarlyStopIdentical)
{
    // Stateful stop controller under the sharded core: StopController
    // polls happen on the coordinator at the same bucket boundaries,
    // so the stop cycle (mid-epoch, with workers simulated ahead) must
    // match the sequential run exactly.
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 2000, 256, 16);
    SimOptions opts;
    CountdownStop seq_stop(5);
    opts.stop = &seq_stop;
    auto seq = s.simulateKernel(k, 1, opts);
    EXPECT_TRUE(seq.stoppedEarly);
    for (uint32_t t : {2u, 4u, 8u}) {
        CountdownStop par_stop(5);
        opts.stop = &par_stop;
        opts.intraKernelThreads = t;
        auto par = s.simulateKernel(k, 1, opts);
        expectIdentical(seq, par);
    }
}

TEST(SimCoreParallel, PkpEarlyStopIdentical)
{
    GpuSimulator s(voltaV100());
    auto k = makeKernel(computeProg(), 6000, 256, 12);
    SimOptions opts;
    pka::core::IpcStabilityController seq_stop;
    opts.stop = &seq_stop;
    auto seq = s.simulateKernel(k, 11, opts);
    EXPECT_TRUE(seq.stoppedEarly);
    for (uint32_t t : {2u, 4u}) {
        pka::core::IpcStabilityController par_stop;
        opts.stop = &par_stop;
        opts.intraKernelThreads = t;
        auto par = s.simulateKernel(k, 11, opts);
        expectIdentical(seq, par);
    }
}

TEST(SimCoreParallel, BudgetTruncationIdentical)
{
    // Instruction budgets and cycle caps end the run mid-epoch with
    // worker-side SM state simulated past the end cycle; the result
    // must come from coordinator state only.
    {
        SimOptions opts;
        opts.maxThreadInstructions = 100000;
        expectShardedIdentical(makeKernel(computeProg(), 400, 256, 16),
                               7, opts);
    }
    {
        SimOptions opts;
        opts.maxCycles = 500;
        expectShardedIdentical(makeKernel(computeProg(), 400, 256, 16),
                               8, opts);
    }
}

TEST(SimCoreParallel, CancelMidEpochThrowsCleanly)
{
    // A cycle-budget watchdog trips at a bucket boundary inside the
    // replay, after workers have already simulated further ahead. The
    // sharded core must shut the team down and surface the same
    // kTimeout the sequential core throws — at the same cycle.
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(), 2000, 256, 16);
    auto run_with = [&](uint32_t threads) -> std::string {
        CancelToken tok;
        tok.armCycleBudget(4000);
        SimOptions opts;
        opts.cancel = &tok;
        opts.intraKernelThreads = threads;
        try {
            s.simulateKernel(k, 3, opts);
        } catch (const pka::common::TaskException &e) {
            EXPECT_EQ(e.kind(), pka::common::ErrorKind::kTimeout);
            return e.what();
        }
        ADD_FAILURE() << "watchdog did not trip at threads="
                      << threads;
        return {};
    };
    const std::string seq_msg = run_with(1);
    for (uint32_t t : {2u, 4u, 8u})
        EXPECT_EQ(run_with(t), seq_msg) << t; // same kernel, same cycle
}

TEST(SimCoreParallel, TraceSeriesIdentical)
{
    // Sample-for-sample Figure-5 series identity, including the L2/DRAM
    // annotations computed from the shared memory model's counters at
    // bucket boundaries during the replay.
    GpuSimulator s(voltaV100());
    auto k = makeKernel(memProg(0.1, 0.3), 800, 256, 8);
    SimOptions opts;
    opts.traceIpc = true;
    auto seq = s.simulateKernel(k, 4, opts);
    opts.intraKernelThreads = 4;
    auto par = s.simulateKernel(k, 4, opts);
    ASSERT_EQ(seq.trace.size(), par.trace.size());
    ASSERT_FALSE(seq.trace.empty());
    for (size_t i = 0; i < seq.trace.size(); ++i) {
        EXPECT_EQ(seq.trace[i].cycle, par.trace[i].cycle) << i;
        EXPECT_EQ(seq.trace[i].ipc, par.trace[i].ipc) << i;
        EXPECT_EQ(seq.trace[i].l2MissPct, par.trace[i].l2MissPct) << i;
        EXPECT_EQ(seq.trace[i].dramUtilPct, par.trace[i].dramUtilPct)
            << i;
    }
}

TEST(SimCoreParallel, TracedReplayIdentical)
{
    auto k = makeKernel(memProg(), 150, 256, 6);
    k.ctaWorkCv = 0.7;
    KernelTrace trace = captureTrace(k, 42);
    SimOptions opts;
    opts.trace = &trace;
    expectShardedIdentical(k, 99, opts);
}

TEST(SimCoreAge, GtoAgeSeedOffsetInvariant)
{
    // Regression for the 32-bit age-counter wrap: GTO priority is the
    // warp's assignment sequence number, so seeding the counter near
    // 2^32 must not change scheduling. With the old uint32_t counter
    // the offset run wrapped mid-kernel, later warps suddenly looked
    // "oldest", and the two runs diverged.
    auto spec = voltaV100();
    auto k = makeKernel(memProg(), 8, 256, 4);
    MemoryModel mem_a(spec, 7), mem_b(spec, 7);
    SmCore a(spec, k, mem_a, 7, 4, SchedulerPolicy::Gto, nullptr, 1);
    SmCore b(spec, k, mem_b, 7, 4, SchedulerPolicy::Gto, nullptr, 1);
    b.seedAgeCounter((uint64_t{1} << 32) - 20); // wraps 20 warps in

    uint64_t next_cta = 0;
    for (uint64_t cycle = 0; cycle < 200000; ++cycle) {
        if (cycle % 7 == 0 && next_cta < 8 && a.hasFreeSlot()) {
            a.assignCta(next_cta);
            b.assignCta(next_cta);
            ++next_cta;
        }
        SmTickResult ra = a.tick(cycle);
        SmTickResult rb = b.tick(cycle);
        ASSERT_EQ(ra.warpInstsIssued, rb.warpInstsIssued) << cycle;
        ASSERT_EQ(ra.threadInstsRetired, rb.threadInstsRetired) << cycle;
        ASSERT_EQ(ra.ctasFinished, rb.ctasFinished) << cycle;
        ASSERT_EQ(a.nextWake(), b.nextWake()) << cycle;
        if (next_cta == 8 && !a.busy() && !b.busy())
            break;
    }
    EXPECT_FALSE(a.busy());
    EXPECT_FALSE(b.busy());
}
