/**
 * @file
 * Tests for the serve subsystem: wire-protocol round-trips (percent
 * encoding, hexfloat doubles), session-directory sanitization, admission
 * control units (campaign scheduler, launch quota, session cap),
 * streaming selection (OnlinePks determinism, bounded resident memory,
 * weight conservation, single-launch profiling bit-identity), and the
 * daemon end to end: concurrent streaming campaigns on one shared
 * engine, typed over-capacity rejection, RUN aggregates bit-identical
 * to a local batch campaign, and fault-injected crash/reconnect/resume
 * through the session journal with bit-identical final aggregates.
 */

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/fault.hh"
#include "core/experiments.hh"
#include "core/online_pks.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "silicon/gpu_spec.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/engine.hh"
#include "store/file_store.hh"
#include "store/journal.hh"
#include "workload/suites.hh"

namespace fs = std::filesystem;
using ::testing::HasSubstr;
using namespace pka::serve;
using pka::common::ErrorKind;
using pka::common::Expected;
using pka::silicon::DetailedProfile;
using pka::silicon::DetailedProfiler;
using pka::silicon::SiliconGpu;
using pka::silicon::voltaV100;

namespace
{

/** Self-cleaning unique temp directory for one test. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("pka_serve_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const fs::path &path() const { return path_; }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** Detailed profiles of a small registry workload (profiler variant). */
std::vector<DetailedProfile>
profilesFor(const std::string &name, double scale = 0.02)
{
    pka::workload::GenOptions g;
    g.mlperfScale = scale;
    g.underProfiler = true;
    auto w = pka::workload::buildWorkload(name, g);
    EXPECT_TRUE(w.has_value()) << name;
    SiliconGpu gpu(voltaV100());
    DetailedProfiler prof(gpu);
    return prof.profile(*w);
}

/** Terminal reply of one client request, failing the test on transport
 *  errors (ERR replies come back as values). */
Message
mustCall(Client &c, const Message &req,
         const std::function<void(const Message &)> &onEvent = {})
{
    Expected<Message> r = c.call(req, onEvent);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().str());
    return r.ok() ? r.value() : Message{};
}

Message
runRequest(const std::string &id, const std::string &workload,
           double quorum = 1.0, bool resume = false)
{
    Message req{"RUN", {}};
    req.add("id", id).add("workload", workload).addDouble("quorum",
                                                          quorum);
    if (resume)
        req.add("resume", "1");
    return req;
}

} // namespace

// ---------------------------------------------------------------------
// Protocol: encoding, parsing, typed field access.
// ---------------------------------------------------------------------

TEST(ServeProtocol, RoundTripsHostileStrings)
{
    const std::string hostile[] = {
        "",
        "plain",
        "with space",
        "equals=and=more",
        "percent%20literal%",
        "line\nbreak\r\nand cr",
        "unicode \xc3\xa9\xc2\xa0",
    };
    for (const std::string &s : hostile)
        EXPECT_EQ(decodeValue(encodeValue(s)), s) << s;

    Message m{"ERR", {}};
    m.add("id", "c 1").add("msg", "boom =\n 100%");
    Expected<Message> back = parseMessage(formatMessage(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().verb, "ERR");
    EXPECT_EQ(back.value().get("id"), "c 1");
    EXPECT_EQ(back.value().get("msg"), "boom =\n 100%");
}

TEST(ServeProtocol, DoublesRoundTripBitExactly)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0 / 3.0,
                             5.71824321e5,
                             -2.2250738585072014e-308,
                             1.7976931348623157e308,
                             4.9406564584124654e-324};
    for (double v : values) {
        Message m{"RESULT", {}};
        m.addDouble("x", v);
        Expected<Message> back = parseMessage(formatMessage(m));
        ASSERT_TRUE(back.ok());
        Expected<double> x = back.value().getDouble("x", 0.0);
        ASSERT_TRUE(x.ok());
        EXPECT_EQ(std::memcmp(&v, &x.value(), sizeof v), 0) << v;
    }
}

TEST(ServeProtocol, RejectsMalformedLinesAndFields)
{
    EXPECT_FALSE(parseMessage("").ok());
    EXPECT_FALSE(parseMessage("RUN id").ok()); // field without '='
    ASSERT_TRUE(parseMessage("FROB a=1").ok()); // unknown verbs parse

    Message m{"OK", {}};
    m.add("n", "12x").add("d", "nan").add("big", "99");
    EXPECT_FALSE(m.getUint("n", 0).ok());
    EXPECT_EQ(m.getUint("n", 0).error().kind, ErrorKind::kBadInput);
    EXPECT_FALSE(m.getDouble("d", 0.0).ok());
    EXPECT_FALSE(m.getUint("big", 0, 0, 10).ok()); // range-checked
    EXPECT_EQ(m.getUint("absent", 7, 0, 10).value(), 7u);
}

// ---------------------------------------------------------------------
// Sessions and admission control.
// ---------------------------------------------------------------------

TEST(ServeSession, SessionDirSanitizesHostileKeys)
{
    using pka::store::sessionDir;
    EXPECT_EQ(sessionDir("/c", "alice-1"), "/c/sessions/alice-1");
    EXPECT_EQ(sessionDir("/c", "../../etc/passwd"),
              "/c/sessions/.._.._etc_passwd");
    EXPECT_EQ(sessionDir("/c", "a b\nc"), "/c/sessions/a_b_c");
    EXPECT_EQ(sessionDir("/c", ""), "/c/sessions/_");
}

TEST(ServeSession, ManagerCapsSessionsAndCountsConnects)
{
    TempDir dir;
    SessionManager mgr(dir.str(), 2);
    Expected<Session *> a = mgr.open("a");
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(fs::is_directory(a.value()->dir));
    EXPECT_EQ(a.value()->connects, 1u);
    ASSERT_TRUE(mgr.open("b").ok());

    Expected<Session *> c = mgr.open("c");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.error().kind, ErrorKind::kRejected);

    // Re-opening an existing key is not a new session.
    Expected<Session *> a2 = mgr.open("a");
    ASSERT_TRUE(a2.ok());
    EXPECT_EQ(a2.value(), a.value()); // stable pointer
    EXPECT_EQ(a2.value()->connects, 2u);
    EXPECT_EQ(mgr.count(), 2u);
}

TEST(ServeScheduler, AdmitsToCapThenShedsTypedOverloaded)
{
    ServeLimits limits;
    limits.maxConcurrentCampaigns = 2;
    CampaignScheduler sched(limits);
    ASSERT_TRUE(sched.admit("a").ok());
    ASSERT_TRUE(sched.admit("b").ok());

    // Saturation is pressure, not policy: the refusal is kOverloaded
    // (distinct from the kRejected quota errors) and counted as shed.
    Expected<bool> third = sched.admit("c");
    ASSERT_FALSE(third.ok());
    EXPECT_EQ(third.error().kind, ErrorKind::kOverloaded);
    EXPECT_THAT(third.error().message, HasSubstr("'c'"));
    EXPECT_EQ(sched.active(), 2u);
    EXPECT_EQ(sched.shed(), 1u);
    EXPECT_EQ(sched.rejected(), 0u);

    sched.release();
    EXPECT_TRUE(sched.admit("c").ok());
    EXPECT_EQ(sched.peakActive(), 2u);
}

TEST(ServeScheduler, HighPriorityUsesOverflowReserveAtSaturation)
{
    ServeLimits limits;
    limits.maxConcurrentCampaigns = 2;
    EXPECT_EQ(limits.effectiveReserve(), 1u); // max(1, 2/4)
    CampaignScheduler sched(limits);
    ASSERT_TRUE(sched.admit("a").ok());
    ASSERT_TRUE(sched.admit("b").ok());

    // Background work is shed, urgent work lands in the reserve.
    EXPECT_FALSE(sched.admit("bg", 0).ok());
    ASSERT_TRUE(sched.admit("urgent", 5).ok());

    // The reserve itself is bounded: the next urgent campaign sheds.
    Expected<bool> over = sched.admit("urgent2", 5);
    ASSERT_FALSE(over.ok());
    EXPECT_EQ(over.error().kind, ErrorKind::kOverloaded);
    EXPECT_EQ(sched.active(), 3u);
    EXPECT_EQ(sched.shed(), 2u);
}

TEST(ServeScheduler, LaunchQuotaDrawsDownPerChunk)
{
    LaunchQuota unlimited(0);
    EXPECT_TRUE(unlimited.admit(1u << 20).value());

    LaunchQuota q(100);
    EXPECT_TRUE(q.admit(64).value());
    EXPECT_TRUE(q.admit(36).value());
    Expected<bool> over = q.admit(1);
    ASSERT_FALSE(over.ok());
    EXPECT_EQ(over.error().kind, ErrorKind::kRejected);
    EXPECT_EQ(q.used(), 100u);
}

// ---------------------------------------------------------------------
// OnlinePks: streaming selection.
// ---------------------------------------------------------------------

TEST(OnlinePks, SingleLaunchProfilingIsBitIdenticalToBatch)
{
    pka::workload::GenOptions g;
    g.underProfiler = true;
    auto w = pka::workload::buildWorkload("gauss_s64", g);
    ASSERT_TRUE(w.has_value());
    SiliconGpu gpu(voltaV100());
    DetailedProfiler prof(gpu);
    std::vector<DetailedProfile> batch = prof.profile(*w);
    ASSERT_EQ(batch.size(), w->launches.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        DetailedProfile one = prof.profileLaunch(*w, i);
        EXPECT_EQ(one.launchId, batch[i].launchId);
        EXPECT_EQ(one.kernelName, batch[i].kernelName);
        EXPECT_EQ(one.cycles, batch[i].cycles);
        EXPECT_EQ(one.metrics.toArray(), batch[i].metrics.toArray());
    }
}

TEST(OnlinePks, DeterministicForFixedStreamAndOptions)
{
    std::vector<DetailedProfile> profiles = profilesFor("gauss_s64");
    ASSERT_GT(profiles.size(), 32u);

    pka::core::OnlinePksOptions oo;
    oo.warmupLaunches = 16;
    oo.reservoirCapacity = 24;
    auto run = [&] {
        pka::core::OnlinePks online(oo);
        for (const DetailedProfile &p : profiles)
            EXPECT_TRUE(online.observe(p).ok());
        Expected<pka::core::OnlinePksSelection> sel = online.finish();
        EXPECT_TRUE(sel.ok());
        return sel.value();
    };
    pka::core::OnlinePksSelection a = run();
    pka::core::OnlinePksSelection b = run();
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (size_t i = 0; i < a.groups.size(); ++i) {
        EXPECT_EQ(a.groups[i].representative, b.groups[i].representative);
        EXPECT_EQ(a.groups[i].weight, b.groups[i].weight);
    }
    EXPECT_EQ(a.projectedCycles, b.projectedCycles);
    EXPECT_EQ(a.stats.refits, b.stats.refits);
}

TEST(OnlinePks, ResidentMemoryStaysBoundedOnLongStreams)
{
    std::vector<DetailedProfile> profiles = profilesFor("gauss_s64");
    pka::core::OnlinePksOptions oo;
    oo.warmupLaunches = 8;
    oo.reservoirCapacity = 16;

    // Stream the workload's profiles many times over: ~25x more launches
    // than the configured resident budget.
    pka::core::OnlinePks online(oo);
    size_t streamed = 0;
    for (int rep = 0; rep < 8; ++rep)
        for (const DetailedProfile &p : profiles) {
            ASSERT_TRUE(online.observe(p).ok());
            ++streamed;
        }
    Expected<pka::core::OnlinePksSelection> sel = online.finish();
    ASSERT_TRUE(sel.ok());
    const pka::core::OnlinePksStats &st = sel.value().stats;
    EXPECT_EQ(st.observed, streamed);
    EXPECT_LE(st.maxResidentProfiles,
              oo.warmupLaunches + oo.reservoirCapacity + st.groups);
    EXPECT_LT(st.maxResidentProfiles, streamed / 10);

    // Weight is conserved: every observed launch lands in some group.
    double weight = 0.0;
    for (const auto &grp : sel.value().groups) {
        EXPECT_TRUE(grp.members.empty()); // membership is not retained
        weight += grp.weight;
    }
    EXPECT_NEAR(weight, static_cast<double>(streamed), 1e-6);
}

TEST(OnlinePks, FinishWithoutProfilesIsTypedError)
{
    pka::core::OnlinePks online;
    Expected<pka::core::OnlinePksSelection> sel = online.finish();
    ASSERT_FALSE(sel.ok());
    EXPECT_EQ(sel.error().kind, ErrorKind::kBadInput);
}

TEST(OnlinePks, ShadowCheckIsReadOnlyAndDeterministic)
{
    std::vector<DetailedProfile> profiles = profilesFor("gauss_s64");
    ASSERT_GT(profiles.size(), 32u);

    pka::core::OnlinePksOptions oo;
    oo.warmupLaunches = 16;
    oo.reservoirCapacity = 24;

    auto run = [&](size_t every) {
        pka::core::OnlinePksOptions o = oo;
        o.shadowCheckEvery = every;
        pka::core::OnlinePks online(o);
        for (const DetailedProfile &p : profiles)
            EXPECT_TRUE(online.observe(p).ok());
        Expected<pka::core::OnlinePksSelection> sel = online.finish();
        EXPECT_TRUE(sel.ok());
        return sel.value();
    };

    pka::core::OnlinePksSelection off = run(0);
    pka::core::OnlinePksSelection on = run(8);
    EXPECT_EQ(off.stats.shadowChecks, 0u);
    EXPECT_GT(on.stats.shadowChecks, 0u);
    EXPECT_GE(on.stats.lastShadowDivergence, 0.0);
    EXPECT_LE(on.stats.lastShadowDivergence, 1.0);
    EXPECT_LE(on.stats.shadowDivergences, on.stats.shadowChecks);

    // Read-only contract: running the shadow check never perturbs the
    // selection it audits — groups and projection are bit-identical to
    // the check-free stream.
    ASSERT_EQ(on.groups.size(), off.groups.size());
    for (size_t i = 0; i < on.groups.size(); ++i) {
        EXPECT_EQ(on.groups[i].representative,
                  off.groups[i].representative);
        EXPECT_EQ(on.groups[i].weight, off.groups[i].weight);
    }
    EXPECT_EQ(on.projectedCycles, off.projectedCycles);
    EXPECT_EQ(on.stats.refits, off.stats.refits);

    // And the check itself is deterministic for a fixed stream.
    pka::core::OnlinePksSelection again = run(8);
    EXPECT_EQ(again.stats.shadowChecks, on.stats.shadowChecks);
    EXPECT_EQ(again.stats.shadowDivergences, on.stats.shadowDivergences);
    EXPECT_EQ(again.stats.lastShadowDivergence,
              on.stats.lastShadowDivergence);
}

// ---------------------------------------------------------------------
// Daemon end to end (in-process server, real sockets).
// ---------------------------------------------------------------------

namespace
{

std::unique_ptr<Server>
startServer(const std::string &cacheDir, ServeLimits limits = {})
{
    ServerOptions so;
    so.cacheDir = cacheDir;
    so.engine.threads = 1;
    so.limits = limits;
    Expected<std::unique_ptr<Server>> s = Server::start(so);
    EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error().str());
    return s.ok() ? std::move(s.value()) : nullptr;
}

Client
connectAndHello(const Server &srv, const std::string &session,
                bool resume = false)
{
    Expected<Client> c = Client::connect(srv.address());
    EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().str());
    Expected<Message> h = c.value().hello(session, resume);
    EXPECT_TRUE(h.ok() && h.value().verb == "OK");
    return std::move(c.value());
}

} // namespace

TEST(ServeDaemon, RunAggregatesBitIdenticalToBatchCampaign)
{
    TempDir dir;
    std::unique_ptr<Server> srv = startServer(dir.str() + "/serve");
    ASSERT_NE(srv, nullptr);

    Client c = connectAndHello(*srv, "batch-parity");
    Message res = mustCall(c, runRequest("c0", "bfs4096"));
    ASSERT_EQ(res.verb, "RESULT") << res.get("msg");

    // Local batch run on its own engine and store: same workload, same
    // deterministic pipeline, so the wire hexfloats must match bit for
    // bit (the protocol's round-trip contract carries the rest).
    pka::workload::GenOptions g;
    auto w = pka::workload::buildWorkload("bfs4096", g);
    ASSERT_TRUE(w.has_value());
    pka::store::KernelResultStore store(dir.str() + "/batch");
    pka::sim::EngineOptions eo;
    eo.threads = 1;
    eo.store = &store;
    pka::sim::SimEngine engine(eo);
    pka::sim::GpuSimulator simulator(voltaV100());
    pka::core::FullSimResult fs =
        pka::core::fullSimulate(engine, simulator, *w);

    EXPECT_EQ(res.getDouble("cycles", 0).value(), fs.cycles);
    EXPECT_EQ(res.getDouble("insts", 0).value(), fs.threadInsts);
    EXPECT_EQ(res.getDouble("ipc", 0).value(), fs.ipc());
    EXPECT_EQ(res.getDouble("dram", 0).value(), fs.dramUtilPct);
    EXPECT_EQ(res.getUint("quorum", 0).value(), 1u);

    // Second identical RUN is answered from the daemon's caches.
    Message res2 = mustCall(c, runRequest("c1", "bfs4096"));
    ASSERT_EQ(res2.verb, "RESULT");
    EXPECT_EQ(res2.getDouble("cycles", 0).value(), fs.cycles);
    EXPECT_GT(res2.getUint("cache_hits", 0).value() +
                  res2.getUint("store_hits", 0).value(),
              0u);
    srv->shutdown();
    srv->wait();
    EXPECT_EQ(srv->campaignsCompleted(), 2u);
}

TEST(ServeDaemon, SustainsConcurrentStreamingCampaigns)
{
    constexpr int kClients = 4;
    TempDir dir;
    std::unique_ptr<Server> srv = startServer(dir.str());
    ASSERT_NE(srv, nullptr);

    // Each client opens its stream, then waits until all campaigns are
    // admitted before feeding, so the daemon demonstrably holds all of
    // them in flight at once.
    std::mutex m;
    std::condition_variable cv;
    int opened = 0;
    std::atomic<int> completed{0};

    auto one = [&](int idx) {
        Client c = connectAndHello(*srv, "stream-" + std::to_string(idx));
        Message open{"STREAM", {}};
        open.add("id", "s").add("workload", "gauss_s16");
        open.addUint("warmup", 8).addUint("reservoir", 8);
        Message ok = mustCall(c, open);
        ASSERT_EQ(ok.verb, "OK") << ok.get("msg");
        uint64_t total = ok.getUint("launches", 0).value();
        ASSERT_GT(total, 0u);
        {
            std::unique_lock<std::mutex> lk(m);
            ++opened;
            cv.notify_all();
            cv.wait(lk, [&] { return opened >= kClients; });
        }
        for (uint64_t from = 0; from < total; from += 8) {
            Message feed{"FEED", {}};
            feed.add("id", "s").addUint("from", from).addUint(
                "count", std::min<uint64_t>(8, total - from));
            Message fr = mustCall(c, feed);
            ASSERT_EQ(fr.verb, "OK") << fr.get("msg");
        }
        Message end{"END", {}};
        end.add("id", "s");
        Message res = mustCall(c, end);
        ASSERT_EQ(res.verb, "RESULT") << res.get("msg");
        EXPECT_EQ(res.getUint("observed", 0).value(), total);
        EXPECT_GT(res.getUint("groups", 0).value(), 0u);
        ++completed;
    };

    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back(one, i);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(completed.load(), kClients);
    EXPECT_GE(srv->peakConcurrentCampaigns(),
              static_cast<size_t>(kClients));
    EXPECT_EQ(srv->campaignsCompleted(),
              static_cast<uint64_t>(kClients));
}

TEST(ServeDaemon, OverCapacityCampaignShedsTypedOverloaded)
{
    TempDir dir;
    ServeLimits limits;
    limits.maxConcurrentCampaigns = 1;
    std::unique_ptr<Server> srv = startServer(dir.str(), limits);
    ASSERT_NE(srv, nullptr);

    // The first stream holds the only slot from STREAM until END.
    Client holder = connectAndHello(*srv, "holder");
    Message open{"STREAM", {}};
    open.add("id", "s").add("workload", "gauss_mat4").addUint("warmup", 4);
    ASSERT_EQ(mustCall(holder, open).verb, "OK");

    Client probe = connectAndHello(*srv, "probe");
    Message rej = mustCall(probe, runRequest("r", "gauss_mat4"));
    ASSERT_EQ(rej.verb, "ERR");
    EXPECT_EQ(errorFromMessage(rej).kind, ErrorKind::kOverloaded);
    EXPECT_THAT(rej.get("msg"), HasSubstr("in flight"));

    // Releasing the slot (END) lets the same request through.
    Message end{"END", {}};
    end.add("id", "s");
    Message fed{"FEED", {}};
    fed.add("id", "s").addUint("from", 0).addUint("count", 6);
    ASSERT_EQ(mustCall(holder, fed).verb, "OK");
    ASSERT_EQ(mustCall(holder, end).verb, "RESULT");
    EXPECT_EQ(mustCall(probe, runRequest("r", "gauss_mat4")).verb,
              "RESULT");
}

TEST(ServeDaemon, FeedEnforcesStreamOrderAndBounds)
{
    TempDir dir;
    std::unique_ptr<Server> srv = startServer(dir.str());
    ASSERT_NE(srv, nullptr);
    Client c = connectAndHello(*srv, "order");

    Message open{"STREAM", {}};
    open.add("id", "s").add("workload", "gauss_mat4");
    Message ok = mustCall(c, open);
    ASSERT_EQ(ok.verb, "OK");
    uint64_t total = ok.getUint("launches", 0).value();

    Message gap{"FEED", {}};
    gap.add("id", "s").addUint("from", 2).addUint("count", 1);
    Message r1 = mustCall(c, gap);
    ASSERT_EQ(r1.verb, "ERR"); // out of order: stream starts at 0
    EXPECT_EQ(errorFromMessage(r1).kind, ErrorKind::kBadInput);

    Message past{"FEED", {}};
    past.add("id", "s").addUint("from", 0).addUint("count", total + 5);
    Message r2 = mustCall(c, past);
    ASSERT_EQ(r2.verb, "ERR"); // beyond the workload
    EXPECT_EQ(errorFromMessage(r2).kind, ErrorKind::kBadInput);
}

TEST(ServeDaemon, LaunchQuotaStopsStreamingCampaignMidFlight)
{
    TempDir dir;
    ServeLimits limits;
    limits.campaignLaunchQuota = 8;
    std::unique_ptr<Server> srv = startServer(dir.str(), limits);
    ASSERT_NE(srv, nullptr);
    Client c = connectAndHello(*srv, "quota");

    Message open{"STREAM", {}};
    open.add("id", "s").add("workload", "gauss_s16").addUint("warmup", 4);
    ASSERT_EQ(mustCall(c, open).verb, "OK");

    Message first{"FEED", {}};
    first.add("id", "s").addUint("from", 0).addUint("count", 8);
    ASSERT_EQ(mustCall(c, first).verb, "OK"); // exactly the budget

    Message second{"FEED", {}};
    second.add("id", "s").addUint("from", 8).addUint("count", 8);
    Message rej = mustCall(c, second);
    ASSERT_EQ(rej.verb, "ERR");
    EXPECT_EQ(errorFromMessage(rej).kind, ErrorKind::kRejected);
    EXPECT_THAT(rej.get("msg"), HasSubstr("quota"));
}

// ---------------------------------------------------------------------
// Crash/resume through the daemon path.
// ---------------------------------------------------------------------

namespace
{

/** Arms the process-wide injector per test, disarms on teardown. */
class ServeDaemonResume : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!pka::common::kFaultInjectionCompiledIn)
            GTEST_SKIP() << "built with -DPKA_FAULT_INJECTION=OFF";
        pka::common::FaultInjector::instance().reset();
    }
    void TearDown() override
    {
        pka::common::FaultInjector::instance().reset();
    }
};

} // namespace

TEST_F(ServeDaemonResume, FaultInjectedCrashResumesBitIdentical)
{
    TempDir dir;
    const std::string workload = "gauss_s64"; // 126 launches, 2 chunks
    const std::string session = "resume-me";

    // Reference: an uninterrupted daemon run on its own cache.
    Message base;
    {
        std::unique_ptr<Server> ref = startServer(dir.str() + "/ref");
        ASSERT_NE(ref, nullptr);
        Client c = connectAndHello(*ref, session);
        base = mustCall(c, runRequest("c", workload));
        ASSERT_EQ(base.verb, "RESULT") << base.get("msg");
    }

    // Daemon A: launch quota admits only the first 64-launch chunk, and
    // an injected short write tears the journal tail (key=0x3f targets
    // launch 63, the chunk's final record) — the campaign dies
    // mid-flight with its journaled prefix (minus the torn credit) on
    // disk. The rejection is typed, not a crash.
    ServeLimits limits;
    limits.campaignLaunchQuota = 64;
    {
        std::string err;
        ASSERT_TRUE(
            pka::common::FaultInjector::instance().configureFromString(
                "journal.append:short:key=3f", 1, &err))
            << err;
        std::unique_ptr<Server> a =
            startServer(dir.str() + "/live", limits);
        ASSERT_NE(a, nullptr);
        Client c = connectAndHello(*a, session);
        Message rej = mustCall(c, runRequest("c", workload));
        ASSERT_EQ(rej.verb, "ERR");
        EXPECT_EQ(errorFromMessage(rej).kind, ErrorKind::kRejected);
        pka::common::FaultInjector::instance().reset();
    }

    // Daemon B on the same cache dir ("restarted process"): reconnect
    // with the same session key and resume. The journaled prefix is
    // honoured (store reads, not re-simulation) and the aggregates are
    // bit-identical to the uninterrupted run.
    std::unique_ptr<Server> b = startServer(dir.str() + "/live");
    ASSERT_NE(b, nullptr);
    Client c = connectAndHello(*b, session, /*resume=*/true);
    Message res = mustCall(c, runRequest("c", workload, 1.0,
                                         /*resume=*/true));
    ASSERT_EQ(res.verb, "RESULT") << res.get("msg");
    uint64_t resumed = res.getUint("resumed", 0).value();
    EXPECT_GT(resumed, 0u);
    EXPECT_LT(resumed, res.getUint("launches", 0).value());
    EXPECT_GT(res.getUint("store_hits", 0).value(), 0u);

    EXPECT_EQ(res.getDouble("cycles", 0).value(),
              base.getDouble("cycles", 0).value());
    EXPECT_EQ(res.getDouble("insts", 0).value(),
              base.getDouble("insts", 0).value());
    EXPECT_EQ(res.getDouble("ipc", 0).value(),
              base.getDouble("ipc", 0).value());
    EXPECT_EQ(res.getDouble("dram", 0).value(),
              base.getDouble("dram", 0).value());
    EXPECT_EQ(res.getUint("failed", 0).value(), 0u);
    EXPECT_EQ(res.getUint("quorum", 0).value(), 1u);
}

// ---------------------------------------------------------------------
// Overload safety: peers that vanish, graceful drain.
// ---------------------------------------------------------------------

TEST(ServeDaemon, SurvivesClientVanishingBeforeResultDelivery)
{
    // Regression for SIGPIPE: the daemon computes a campaign whose
    // client hung up mid-flight, so the RESULT write hits a dead socket.
    // Without SIG_IGN + MSG_NOSIGNAL that's a process-killing signal —
    // the daemon must instead drop the connection and keep serving.
    TempDir dir;
    std::unique_ptr<Server> srv = startServer(dir.str());
    ASSERT_NE(srv, nullptr);
    {
        Client c = connectAndHello(*srv, "hangup");
        std::thread killer([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            ::shutdown(c.fd(), SHUT_RDWR); // peer vanishes mid-campaign
        });
        // Either a transport error (socket died first) or a RESULT (the
        // campaign won the race) — both are fine; crashing is not.
        (void)c.call(runRequest("c0", "gauss_mat4"));
        killer.join();
    }

    // The daemon is still alive and answering.
    Client probe = connectAndHello(*srv, "hangup-probe");
    Message st = mustCall(probe, Message{"STATS", {}});
    EXPECT_EQ(st.verb, "OK");
    Message res = mustCall(probe, runRequest("c1", "gauss_mat4"));
    EXPECT_EQ(res.verb, "RESULT") << res.get("msg");
    srv->shutdown();
    srv->wait();
}

TEST(ServeDaemon, DrainFinishesInFlightWorkAndStopsAdmitting)
{
    TempDir dir;
    std::unique_ptr<Server> srv = startServer(dir.str());
    ASSERT_NE(srv, nullptr);
    Client c = connectAndHello(*srv, "drain");

    // Drain the daemon from the first progress EVENT, i.e. provably
    // while the campaign is in flight. The in-flight campaign must
    // still deliver its RESULT on the (write-open) connection.
    std::atomic<bool> drainedMidFlight{false};
    Message res =
        mustCall(c, runRequest("c0", "bfs4096"), [&](const Message &) {
            if (!drainedMidFlight.exchange(true))
                srv->drain();
        });
    ASSERT_EQ(res.verb, "RESULT") << res.get("msg");
    EXPECT_TRUE(drainedMidFlight.load());
    if (!drainedMidFlight.load())
        srv->drain(); // progress cadence changed — still quiesce below
    EXPECT_TRUE(srv->draining());

    // New connections are refused once draining (listener is closed).
    Expected<Client> late = Client::connect(srv->address());
    EXPECT_FALSE(late.ok());

    // A draining daemon quiesces on its own — no shutdown() needed.
    srv->wait();
    EXPECT_EQ(srv->campaignsCompleted(), 1u);
}
