/**
 * @file
 * Persistent result-store tests: CRC-32 vectors, record codec round-trip
 * and rejection, file-store semantics (atomic put/get, corruption and
 * collision handling), campaign-journal resume semantics, and the
 * end-to-end engine contract — warm re-runs answer from disk with
 * bit-identical aggregates, interrupted campaigns resume bit-identically,
 * and corrupt records are skipped, never served and never fatal.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiments.hh"
#include "core/pka.hh"
#include "silicon/gpu_spec.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "store/crc32.hh"
#include "store/file_store.hh"
#include "store/journal.hh"
#include "store/record.hh"
#include "workload/builder.hh"

namespace fs = std::filesystem;
using namespace pka::sim;
using namespace pka::store;
using namespace pka::workload;
using pka::silicon::voltaV100;

namespace
{

/** Self-cleaning unique temp directory for one test. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("pka_store_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

KernelSimKey
sampleKey(uint64_t salt = 0)
{
    KernelSimKey k;
    k.specHash = 0x1111222233334444ULL ^ salt;
    k.contentHash = 0x5555666677778888ULL + salt;
    k.workloadSeed = 42;
    k.seedSalt = 7 + salt;
    k.stopConfigKey = 0x9999aaaabbbbccccULL;
    k.maxThreadInstructions = 1'000'000;
    k.maxCycles = 2'000'000;
    k.ipcBucketCycles = 512;
    k.ipcWindowBuckets = 16;
    k.scheduler = 1;
    return k;
}

KernelSimResult
sampleResult()
{
    KernelSimResult r;
    r.cycles = 123456789;
    r.threadInstructions = 9.875e8;
    r.warpInstructions = 30864197;
    r.finishedCtas = 4096;
    r.inFlightCtas = 3;
    r.totalCtas = 4099;
    r.waveSize = 160;
    r.expectedWarpInstructions = 30900000;
    r.stoppedEarly = true;
    r.truncatedByBudget = false;
    r.dramUtilPct = 61.25;
    r.l2MissPct = 12.5;
    return r;
}

void
expectSameResult(const KernelSimResult &a, const KernelSimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.threadInstructions, b.threadInstructions);
    EXPECT_EQ(a.warpInstructions, b.warpInstructions);
    EXPECT_EQ(a.finishedCtas, b.finishedCtas);
    EXPECT_EQ(a.inFlightCtas, b.inFlightCtas);
    EXPECT_EQ(a.totalCtas, b.totalCtas);
    EXPECT_EQ(a.waveSize, b.waveSize);
    EXPECT_EQ(a.expectedWarpInstructions, b.expectedWarpInstructions);
    EXPECT_EQ(a.stoppedEarly, b.stoppedEarly);
    EXPECT_EQ(a.truncatedByBudget, b.truncatedByBudget);
    EXPECT_EQ(a.dramUtilPct, b.dramUtilPct);
    EXPECT_EQ(a.l2MissPct, b.l2MissPct);
    EXPECT_TRUE(b.trace.empty());
}

ProgramPtr
storeProg(const std::string &name)
{
    return ProgramBuilder(name)
        .seg(InstrClass::GlobalLoad, 2)
        .seg(InstrClass::FpAlu, 8)
        .seg(InstrClass::GlobalStore, 1)
        .mem(2.0, 0.4, 0.6)
        .build();
}

/** A stream of distinct-shape launches (every key unique). */
Workload
distinctWorkload(size_t launches)
{
    Workload w;
    w.suite = "test";
    w.name = "store_distinct";
    w.seed = 42;
    ProgramPtr p = storeProg("store_kernel");
    for (size_t i = 0; i < launches; ++i) {
        KernelDescriptor k;
        k.launchId = static_cast<uint32_t>(i);
        k.program = p;
        k.grid = {40 + static_cast<uint32_t>(i % 5) * 24, 1, 1};
        k.block = {128, 1, 1};
        k.iterations = 2 + static_cast<uint32_t>(i % 3);
        k.ctaWorkCv = 0.3;
        w.launches.push_back(std::move(k));
    }
    return w;
}

EngineOptions
storeOpts(const KernelResultStore *store, unsigned threads = 2)
{
    EngineOptions eo;
    eo.threads = threads;
    eo.memoize = true;
    eo.store = store;
    return eo;
}

/** Paths of every record file currently in a store root. */
std::vector<fs::path>
recordFiles(const fs::path &root)
{
    std::vector<fs::path> out;
    for (const auto &e :
         fs::recursive_directory_iterator(root / "objects"))
        if (e.is_regular_file() && e.path().extension() == ".pkr")
            out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

TEST(Crc32, KnownVectorAndIncrementalUpdate)
{
    const char *check = "123456789";
    EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);

    // Incremental updates compose to the one-shot answer.
    uint32_t crc = crc32Update(0, check, 4);
    crc = crc32Update(crc, check + 4, 5);
    EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Record, RoundTripPreservesEveryField)
{
    KernelSimKey key = sampleKey();
    KernelSimResult in = sampleResult();
    std::string bytes = encodeRecord(key, in);
    ASSERT_EQ(bytes.size(), kRecordSize);

    KernelSimResult out;
    ASSERT_EQ(decodeRecord(bytes.data(), bytes.size(), key, &out),
              DecodeStatus::kOk);
    expectSameResult(in, out);
}

TEST(Record, EveryFlippedByteIsRejected)
{
    KernelSimKey key = sampleKey();
    std::string bytes = encodeRecord(key, sampleResult());
    // Whatever byte rots — header, key echo, payload or the CRC itself —
    // the record must never decode as a hit for this key.
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0x5a);
        KernelSimResult out;
        EXPECT_EQ(decodeRecord(bad.data(), bad.size(), key, &out),
                  DecodeStatus::kCorrupt)
            << "byte " << i;
    }
}

TEST(Record, WrongSizesAreCorrupt)
{
    KernelSimKey key = sampleKey();
    std::string bytes = encodeRecord(key, sampleResult());
    KernelSimResult out;
    EXPECT_EQ(decodeRecord(bytes.data(), bytes.size() - 1, key, &out),
              DecodeStatus::kCorrupt);
    EXPECT_EQ(decodeRecord(bytes.data(), 0, key, &out),
              DecodeStatus::kCorrupt);
    std::string padded = bytes + '\0';
    EXPECT_EQ(decodeRecord(padded.data(), padded.size(), key, &out),
              DecodeStatus::kCorrupt);
}

TEST(Record, ValidRecordForAnotherKeyIsAMismatchNotAHit)
{
    KernelSimKey a = sampleKey(0), b = sampleKey(1);
    std::string bytes = encodeRecord(a, sampleResult());
    KernelSimResult out;
    // The record is bit-perfect — only the identity differs. This is the
    // hash-collision / schema-drift guard.
    EXPECT_EQ(decodeRecord(bytes.data(), bytes.size(), b, &out),
              DecodeStatus::kKeyMismatch);
}

TEST(FileStore, PutThenGetHitsAndMissesAreCounted)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    KernelSimKey key = sampleKey();
    KernelSimResult in = sampleResult();

    KernelSimResult out;
    EXPECT_EQ(store.get(key, &out), Lookup::kMiss);

    store.put(key, in);
    EXPECT_EQ(store.recordCount(), 1u);
    EXPECT_EQ(store.recordBytes(), kRecordSize);
    ASSERT_EQ(store.get(key, &out), Lookup::kHit);
    expectSameResult(in, out);

    // A different key misses without disturbing the stored record.
    EXPECT_EQ(store.get(sampleKey(3), &out), Lookup::kMiss);

    StoreStatsSnapshot s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_EQ(s.putFailures, 0u);
    EXPECT_EQ(s.bytesWritten, kRecordSize);

    // The staging area never leaks temp files.
    EXPECT_TRUE(fs::is_empty(dir.path() / "tmp"));
}

TEST(FileStore, CorruptRecordIsSkippedAndRecoverable)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    KernelSimKey key = sampleKey();
    store.put(key, sampleResult());

    auto files = recordFiles(dir.path());
    ASSERT_EQ(files.size(), 1u);
    {
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(20);
        char junk = 'X';
        f.write(&junk, 1);
    }

    KernelSimResult out;
    EXPECT_EQ(store.get(key, &out), Lookup::kCorrupt);
    EXPECT_EQ(store.stats().corruptSkipped, 1u);

    // put() repairs the record in place (atomic replace).
    store.put(key, sampleResult());
    EXPECT_EQ(store.get(key, &out), Lookup::kHit);
}

TEST(FileStore, CollidedRecordIsAMissNotAHit)
{
    TempDir dir;
    KernelResultStore store(dir.str());
    KernelSimKey a = sampleKey(0), b = sampleKey(1);
    store.put(a, sampleResult());

    // Simulate a 64-bit hash collision: a valid record written for `a`
    // sitting at `b`'s address.
    auto files = recordFiles(dir.path());
    ASSERT_EQ(files.size(), 1u);
    store.put(b, sampleResult());
    auto both = recordFiles(dir.path());
    ASSERT_EQ(both.size(), 2u);
    fs::path b_path = both[0] == files[0] ? both[1] : both[0];
    fs::copy_file(files[0], b_path,
                  fs::copy_options::overwrite_existing);

    KernelSimResult out;
    EXPECT_EQ(store.get(b, &out), Lookup::kMiss);
    EXPECT_EQ(store.stats().keyMismatches, 1u);
}

TEST(FileStore, WarmEngineRunAnswersEntirelyFromDisk)
{
    TempDir dir;
    GpuSimulator simulator(voltaV100());
    Workload w = distinctWorkload(12);

    pka::core::FullSimResult cold, warm;
    {
        KernelResultStore store(dir.str());
        SimEngine engine(storeOpts(&store));
        cold = pka::core::fullSimulate(engine, simulator, w);
        EXPECT_EQ(cold.cacheMisses, w.launches.size());
        EXPECT_EQ(cold.storeHits, 0u);
        EXPECT_EQ(store.recordCount(), w.launches.size());
    }
    {
        // Fresh store handle and fresh engine: cold memory, warm disk —
        // the acceptance criterion's "zero simulator invocations".
        KernelResultStore store(dir.str());
        SimEngine engine(storeOpts(&store));
        warm = pka::core::fullSimulate(engine, simulator, w);
        EXPECT_EQ(warm.storeHits, w.launches.size());
        EXPECT_EQ(warm.cacheMisses, 0u);
        EXPECT_EQ(warm.cacheHits, 0u);
    }
    // Bit-identical aggregates from disk.
    EXPECT_EQ(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.threadInsts, cold.threadInsts);
    EXPECT_EQ(warm.dramUtilPct, cold.dramUtilPct);
    ASSERT_EQ(warm.perKernel.size(), cold.perKernel.size());
    for (size_t i = 0; i < warm.perKernel.size(); ++i)
        EXPECT_EQ(warm.perKernel[i].cycles, cold.perKernel[i].cycles);
}

TEST(FileStore, CorruptRecordFallsBackToSimulationBitIdentically)
{
    TempDir dir;
    GpuSimulator simulator(voltaV100());
    Workload w = distinctWorkload(8);

    pka::core::FullSimResult cold;
    {
        KernelResultStore store(dir.str());
        SimEngine engine(storeOpts(&store));
        cold = pka::core::fullSimulate(engine, simulator, w);
    }

    // Rot one record on disk between runs.
    auto files = recordFiles(dir.path());
    ASSERT_EQ(files.size(), w.launches.size());
    {
        std::ofstream f(files[3], std::ios::binary | std::ios::trunc);
        f << "not a record";
    }

    KernelResultStore store(dir.str());
    SimEngine engine(storeOpts(&store));
    pka::core::FullSimResult warm =
        pka::core::fullSimulate(engine, simulator, w);
    EXPECT_EQ(warm.storeHits, w.launches.size() - 1);
    EXPECT_EQ(warm.cacheMisses, 1u); // re-simulated, not served corrupt
    EXPECT_EQ(warm.corruptSkipped, 1u);
    EXPECT_EQ(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.threadInsts, cold.threadInsts);

    // The re-simulation also repaired the record for the next run.
    KernelSimResult fixed;
    EXPECT_EQ(store.stats().corruptSkipped, 1u);
    SimEngine engine2(storeOpts(&store));
    pka::core::FullSimResult again =
        pka::core::fullSimulate(engine2, simulator, w);
    EXPECT_EQ(again.storeHits, w.launches.size());
    EXPECT_EQ(again.cycles, cold.cycles);
}

TEST(CampaignJournal, RoundTripAndResume)
{
    TempDir dir;
    std::string path = (dir.path() / "journal.pkj").string();
    constexpr uint64_t kKey = 0xdeadbeefcafef00dULL;

    {
        CampaignJournal j(path, kKey, 10, /*resume=*/false);
        EXPECT_EQ(j.completedCount(), 0u);
        j.markDone({0, 1, 2, 5});
        j.markDone({2}); // duplicate: ignored
        EXPECT_EQ(j.completedCount(), 4u);
    }
    {
        CampaignJournal j(path, kKey, 10, /*resume=*/true);
        EXPECT_EQ(j.completedCount(), 4u);
        EXPECT_EQ(j.resumedCount(), 4u);
        EXPECT_TRUE(j.isDone(0));
        EXPECT_TRUE(j.isDone(5));
        EXPECT_FALSE(j.isDone(3));
        EXPECT_FALSE(j.isDone(9));
        j.markDone({3});
    }
    {
        // Appended entries survive a second resume.
        CampaignJournal j(path, kKey, 10, /*resume=*/true);
        EXPECT_EQ(j.resumedCount(), 5u);
    }
}

TEST(CampaignJournal, MismatchedCampaignRestartsFresh)
{
    TempDir dir;
    std::string path = (dir.path() / "journal.pkj").string();
    {
        CampaignJournal j(path, 111, 10, false);
        j.markDone({0, 1, 2});
    }
    {
        // Different campaign key: never resume someone else's progress.
        CampaignJournal j(path, 222, 10, true);
        EXPECT_EQ(j.completedCount(), 0u);
        EXPECT_EQ(j.resumedCount(), 0u);
    }
    {
        CampaignJournal j(path, 111, 10, false);
        j.markDone({0, 1, 2});
    }
    {
        // Different launch count: same story.
        CampaignJournal j(path, 111, 12, true);
        EXPECT_EQ(j.completedCount(), 0u);
    }
    {
        // resume=false ignores any existing journal.
        CampaignJournal j(path, 111, 10, false);
        j.markDone({7});
        EXPECT_EQ(j.completedCount(), 1u);
        EXPECT_EQ(j.resumedCount(), 0u);
    }
}

TEST(CampaignJournal, TornTailIsToleratedGarbageIsNot)
{
    TempDir dir;
    std::string path = (dir.path() / "journal.pkj").string();
    {
        CampaignJournal j(path, 42, 10, false);
        j.markDone({0, 1, 2, 3});
    }
    {
        // Tear the final line mid-write, as a crash would.
        std::ifstream is(path);
        std::string content((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
        std::ofstream os(path, std::ios::trunc);
        os << content.substr(0, content.size() - 2);
    }
    {
        CampaignJournal j(path, 42, 10, true);
        // done,0 done,1 done,2 intact; "done," torn.
        EXPECT_EQ(j.resumedCount(), 3u);
    }
    {
        // Wholesale garbage restarts fresh instead of failing.
        std::ofstream os(path, std::ios::trunc);
        os << "this is not a journal\n";
    }
    {
        CampaignJournal j(path, 42, 10, true);
        EXPECT_EQ(j.resumedCount(), 0u);
    }
}

TEST(Checkpoint, InterruptedCampaignResumesBitIdentically)
{
    TempDir dir;
    GpuSimulator simulator(voltaV100());
    Workload w = distinctWorkload(10);
    constexpr size_t kInterruptAfter = 6;

    // Reference: one uninterrupted run, no store at all.
    SimEngine plain(storeOpts(nullptr));
    pka::core::FullSimResult ref =
        pka::core::fullSimulate(plain, simulator, w);

    // "Interrupted" run: the first kInterruptAfter launches complete
    // (results persisted, completion journaled), then the process dies.
    {
        KernelResultStore store(dir.str());
        SimEngine engine(storeOpts(&store));
        std::vector<SimJob> prefix(kInterruptAfter);
        for (size_t i = 0; i < kInterruptAfter; ++i) {
            prefix[i].kernel = &w.launches[i];
            prefix[i].workloadSeed = w.seed;
        }
        engine.run(simulator, prefix);

        uint64_t key =
            pka::core::campaignKey(simulator, w, engine, "fullsim");
        CampaignJournal j(pka::core::journalPath(dir.str(), "fullsim", key),
                          key, w.launches.size(), false);
        std::vector<size_t> done;
        for (size_t i = 0; i < kInterruptAfter; ++i)
            done.push_back(i);
        j.markDone(done);
    }

    // Resume in a fresh process (fresh engine, cold memory cache).
    KernelResultStore store(dir.str());
    SimEngine engine(storeOpts(&store));
    pka::core::CampaignCheckpoint cp;
    cp.dir = dir.str();
    cp.resume = true;
    cp.chunkLaunches = 4;
    pka::core::FullSimResult res =
        pka::core::fullSimulate(engine, simulator, w, &cp);

    EXPECT_EQ(res.resumedLaunches, kInterruptAfter);
    EXPECT_EQ(res.storeHits, kInterruptAfter);
    EXPECT_EQ(res.cacheMisses, w.launches.size() - kInterruptAfter);
    EXPECT_EQ(res.cycles, ref.cycles);
    EXPECT_EQ(res.threadInsts, ref.threadInsts);
    EXPECT_EQ(res.dramUtilPct, ref.dramUtilPct);
    ASSERT_EQ(res.perKernel.size(), ref.perKernel.size());
    for (size_t i = 0; i < res.perKernel.size(); ++i)
        EXPECT_EQ(res.perKernel[i].cycles, ref.perKernel[i].cycles);

    // And a third run is now a complete warm replay.
    SimEngine warm(storeOpts(&store));
    pka::core::FullSimResult replay =
        pka::core::fullSimulate(warm, simulator, w, &cp);
    EXPECT_EQ(replay.resumedLaunches, w.launches.size());
    EXPECT_EQ(replay.cacheMisses, 0u);
    EXPECT_EQ(replay.cycles, ref.cycles);
}

TEST(Checkpoint, SelectionCampaignJournalsAndResumes)
{
    TempDir dir;
    GpuSimulator simulator(voltaV100());
    Workload w = distinctWorkload(12);

    pka::core::SelectionOutcome sel;
    for (uint32_t rep : {0u, 3u, 7u, 11u}) {
        pka::core::KernelGroup g;
        g.representative = rep;
        g.weight = 3.0;
        sel.groups.push_back(g);
    }

    pka::core::CampaignCheckpoint cp;
    cp.dir = dir.str();
    cp.resume = false;
    cp.chunkLaunches = 2;

    KernelResultStore store(dir.str());
    SimEngine engine(storeOpts(&store));
    pka::core::AppProjection first = pka::core::simulateSelection(
        engine, simulator, w, sel, nullptr, &cp);
    EXPECT_EQ(first.cacheMisses, sel.groups.size());

    // The journal exists and records every group.
    bool found = false;
    for (const auto &e : fs::directory_iterator(dir.path()))
        if (e.path().extension() == ".pkj")
            found = true;
    EXPECT_TRUE(found);

    cp.resume = true;
    SimEngine fresh(storeOpts(&store));
    pka::core::AppProjection second = pka::core::simulateSelection(
        fresh, simulator, w, sel, nullptr, &cp);
    EXPECT_EQ(second.storeHits, sel.groups.size());
    EXPECT_EQ(second.cacheMisses, 0u);
    EXPECT_EQ(second.projectedCycles, first.projectedCycles);
    EXPECT_EQ(second.simulatedCycles, first.simulatedCycles);
}

TEST(Checkpoint, CampaignKeySeparatesStreamsAndStages)
{
    GpuSimulator simulator(voltaV100());
    SimEngine engine(storeOpts(nullptr));
    Workload a = distinctWorkload(6);
    Workload b = distinctWorkload(7);

    uint64_t ka = pka::core::campaignKey(simulator, a, engine, "fullsim");
    EXPECT_EQ(ka,
              pka::core::campaignKey(simulator, a, engine, "fullsim"));
    EXPECT_NE(ka,
              pka::core::campaignKey(simulator, b, engine, "fullsim"));
    EXPECT_NE(ka, pka::core::campaignKey(simulator, a, engine, "pks"));

    // contentSeed changes every cached key, so it changes the campaign.
    EngineOptions eo;
    eo.contentSeed = true;
    SimEngine seeded(eo);
    EXPECT_NE(ka,
              pka::core::campaignKey(simulator, a, seeded, "fullsim"));
}
