/**
 * @file
 * Silicon-substrate tests: GPU specs, the occupancy calculator, the
 * analytic device's physical invariants, cross-generation consistency of
 * data jitter, and the two profilers (counter exactness and cost models).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "workload/builder.hh"
#include "workload/suites.hh"

using namespace pka::silicon;
using namespace pka::workload;

namespace
{

ProgramPtr
prog(double sectors = 1.2, double l1 = 0.6, double l2 = 0.7)
{
    return ProgramBuilder("p")
        .seg(InstrClass::GlobalLoad, 2)
        .seg(InstrClass::FpAlu, 8)
        .seg(InstrClass::GlobalStore, 1)
        .mem(sectors, l1, l2)
        .build();
}

KernelDescriptor
kernel(uint32_t ctas = 160, uint32_t threads = 256, uint32_t iters = 10,
       uint16_t regs = 32, uint32_t smem = 0)
{
    KernelDescriptor k;
    k.launchId = 0;
    k.program = prog();
    k.grid = {ctas, 1, 1};
    k.block = {threads, 1, 1};
    k.iterations = iters;
    k.regsPerThread = regs;
    k.smemPerBlock = smem;
    return k;
}

} // namespace

TEST(GpuSpec, Presets)
{
    auto v = voltaV100();
    auto t = turingRtx2060();
    auto a = ampereRtx3070();
    EXPECT_EQ(v.numSms, 80u);
    EXPECT_EQ(t.numSms, 30u);
    EXPECT_EQ(a.numSms, 46u);
    EXPECT_GT(v.dramBandwidthGBs, t.dramBandwidthGBs);
    EXPECT_EQ(std::string(generationName(v.generation)), "volta");
    EXPECT_EQ(std::string(generationName(t.generation)), "turing");
    EXPECT_EQ(std::string(generationName(a.generation)), "ampere");
}

TEST(GpuSpec, WithSmCount)
{
    auto half = withSmCount(voltaV100(), 40);
    EXPECT_EQ(half.numSms, 40u);
    EXPECT_NE(half.name.find("40 SMs"), std::string::npos);
}

TEST(Occupancy, ThreadLimited)
{
    // 1024-thread blocks on a 2048-thread SM: 2 CTAs.
    auto k = kernel(10, 1024, 1, 16);
    EXPECT_EQ(maxCtasPerSm(voltaV100(), k), 2u);
}

TEST(Occupancy, RegisterLimited)
{
    // 256 threads x 8 warps x 32 lanes x 128 regs = 32768 regs/CTA -> 2.
    auto k = kernel(10, 256, 1, 128);
    EXPECT_EQ(maxCtasPerSm(voltaV100(), k), 2u);
}

TEST(Occupancy, SharedMemLimited)
{
    auto k = kernel(10, 64, 1, 16, 48 * 1024);
    EXPECT_EQ(maxCtasPerSm(voltaV100(), k), 2u);
}

TEST(Occupancy, CtaSlotLimited)
{
    // Tiny CTAs hit the 32-slot architectural cap.
    auto k = kernel(10, 32, 1, 8);
    EXPECT_EQ(maxCtasPerSm(voltaV100(), k), 32u);
}

TEST(Occupancy, UnschedulableKernelIsFatal)
{
    auto k = kernel(10, 1024, 1, 16, 200 * 1024);
    EXPECT_DEATH(maxCtasPerSm(voltaV100(), k), "cannot be scheduled");
}

TEST(Occupancy, WaveSize)
{
    auto k = kernel(10, 1024, 1, 16);
    EXPECT_EQ(waveSize(voltaV100(), k), 2u * 80u);
}

TEST(SiliconGpu, DeterministicExecution)
{
    SiliconGpu gpu(voltaV100());
    auto k = kernel();
    EXPECT_EQ(gpu.execute(k, 42).cycles, gpu.execute(k, 42).cycles);
}

TEST(SiliconGpu, SeedChangesJitter)
{
    SiliconGpu gpu(voltaV100());
    auto k = kernel();
    EXPECT_NE(gpu.execute(k, 1).cycles, gpu.execute(k, 2).cycles);
}

TEST(SiliconGpu, MoreWorkTakesLonger)
{
    SiliconGpu gpu(voltaV100());
    auto k1 = kernel(160, 256, 4);
    auto k2 = kernel(160, 256, 64);
    EXPECT_GT(gpu.execute(k2, 7).cycles, gpu.execute(k1, 7).cycles);
}

TEST(SiliconGpu, MoreSmsIsFaster)
{
    SiliconGpu big(voltaV100());
    SiliconGpu small(withSmCount(voltaV100(), 20));
    auto k = kernel(640, 256, 32);
    EXPECT_LT(big.execute(k, 7).cycles, small.execute(k, 7).cycles);
}

TEST(SiliconGpu, JitterSharedAcrossGenerations)
{
    // Data-dependent variation must be a property of the (workload,
    // launch), not the GPU, so Volta-selected kernels stay representative
    // on Turing/Ampere.
    SiliconGpu volta(voltaV100());
    SiliconGpu turing(turingRtx2060());
    auto k1 = kernel();
    k1.launchId = 3;
    auto k2 = kernel();
    k2.launchId = 9;
    double rv = static_cast<double>(volta.execute(k1, 5).cycles) /
                static_cast<double>(volta.execute(k2, 5).cycles);
    double rt = static_cast<double>(turing.execute(k1, 5).cycles) /
                static_cast<double>(turing.execute(k2, 5).cycles);
    EXPECT_NEAR(rv, rt, 0.02 * rv);
}

TEST(SiliconGpu, DramUtilBounded)
{
    SiliconGpu gpu(voltaV100());
    auto k = kernel();
    auto e = gpu.execute(k, 11);
    EXPECT_GE(e.dramUtilPct, 0.0);
    EXPECT_LE(e.dramUtilPct, 100.0);
    EXPECT_GE(e.l2MissPct, 0.0);
    EXPECT_LE(e.l2MissPct, 100.0);
}

TEST(SiliconGpu, SecondsConsistentWithClock)
{
    auto spec = voltaV100();
    SiliconGpu gpu(spec);
    auto e = gpu.execute(kernel(), 3);
    EXPECT_NEAR(e.seconds,
                static_cast<double>(e.cycles) / (spec.coreClockGhz * 1e9),
                1e-12);
}

TEST(SiliconGpu, AppExecutionSumsLaunches)
{
    SiliconGpu gpu(voltaV100());
    auto w = buildWorkload("backprop");
    ASSERT_TRUE(w);
    auto app = gpu.run(*w);
    uint64_t sum = 0;
    for (const auto &l : app.launches)
        sum += l.cycles;
    EXPECT_EQ(app.totalCycles, sum);
}

TEST(SiliconGpu, IrregularKernelsVaryMore)
{
    SiliconGpu gpu(voltaV100());
    auto base = kernel();
    std::vector<double> reg, irr;
    for (uint32_t id = 0; id < 40; ++id) {
        auto k = base;
        k.launchId = id;
        reg.push_back(static_cast<double>(gpu.execute(k, 1).cycles));
        k.ctaWorkCv = 1.0;
        irr.push_back(static_cast<double>(gpu.execute(k, 1).cycles));
    }
    double reg_cv = pka::common::stddev(reg) / pka::common::mean(reg);
    double irr_cv = pka::common::stddev(irr) / pka::common::mean(irr);
    EXPECT_GT(irr_cv, reg_cv);
}

TEST(DetailedProfiler, CountersMatchDescriptorArithmetic)
{
    SiliconGpu gpu(voltaV100());
    WorkloadBuilder b("t", "t", 99);
    auto p = ProgramBuilder("k")
                 .seg(InstrClass::GlobalLoad, 3)
                 .seg(InstrClass::SharedLoad, 5)
                 .seg(InstrClass::FpAlu, 10)
                 .seg(InstrClass::GlobalStore, 2)
                 .mem(2.0, 0.5, 0.5)
                 .divergence(0.75)
                 .build();
    b.launch(p, {4, 1, 1}, {64, 1, 1}, {.iterations = 3});
    Workload w = b.build();
    DetailedProfiler prof(gpu);
    auto ps = prof.profile(w);
    ASSERT_EQ(ps.size(), 1u);
    const auto &m = ps[0].metrics;
    // 4 CTAs x 2 warps x 3 iterations = 24 warp executions.
    EXPECT_NEAR(m.threadGlobalLoads, 24.0 * 3, 24.0 * 3 * 0.02);
    EXPECT_NEAR(m.threadSharedLoads, 24.0 * 5, 24.0 * 5 * 0.02);
    EXPECT_NEAR(m.threadGlobalStores, 24.0 * 2, 24.0 * 2 * 0.02);
    EXPECT_NEAR(m.coalescedGlobalLoads, 24.0 * 3 * 2.0,
                24.0 * 3 * 2.0 * 0.02);
    EXPECT_NEAR(m.instructions, 24.0 * 20, 24.0 * 20 * 0.02);
    EXPECT_DOUBLE_EQ(m.divergenceEff, 24.0); // 32 x 0.75
    EXPECT_DOUBLE_EQ(m.numCtas, 4.0);
    EXPECT_EQ(ps[0].kernelName, "k");
    EXPECT_GT(ps[0].cycles, 0u);
}

TEST(DetailedProfiler, MaxKernelsLimitsPrefix)
{
    SiliconGpu gpu(voltaV100());
    auto w = buildWorkload("gauss_208");
    ASSERT_TRUE(w);
    DetailedProfiler prof(gpu);
    EXPECT_EQ(prof.profile(*w, 10).size(), 10u);
    EXPECT_EQ(prof.profile(*w).size(), 414u);
}

TEST(DetailedProfiler, CostDominatedByPerKernelOverhead)
{
    SiliconGpu gpu(voltaV100());
    auto w = buildWorkload("gauss_208");
    ASSERT_TRUE(w);
    DetailedProfiler prof(gpu);
    double cost = prof.costSeconds(*w);
    // 414 short kernels: cost must exceed the fixed replay overhead sum.
    EXPECT_GT(cost, 414 * DetailedProfiler::kPerKernelOverheadSec);
    EXPECT_LT(cost, 414 * DetailedProfiler::kPerKernelOverheadSec * 2);
}

TEST(LightweightProfiler, RecordsNamesAndDims)
{
    SiliconGpu gpu(voltaV100());
    auto w = buildWorkload("histo");
    ASSERT_TRUE(w);
    LightweightProfiler prof(gpu);
    auto ps = prof.profile(*w);
    ASSERT_EQ(ps.size(), w->launches.size());
    for (size_t i = 0; i < ps.size(); ++i) {
        EXPECT_EQ(ps[i].kernelName, w->launches[i].program->name);
        EXPECT_EQ(ps[i].grid.total(), w->launches[i].grid.total());
    }
}

TEST(LightweightProfiler, MuchCheaperThanDetailed)
{
    SiliconGpu gpu(voltaV100());
    auto w = buildWorkload("gauss_208");
    ASSERT_TRUE(w);
    double light = LightweightProfiler(gpu).costSeconds(*w);
    double detailed = DetailedProfiler(gpu).costSeconds(*w);
    EXPECT_LT(light * 100, detailed);
}

TEST(KernelMetrics, ArrayRoundTripAndNames)
{
    KernelMetrics m;
    m.instructions = 10;
    m.numCtas = 4;
    auto a = m.toArray();
    EXPECT_DOUBLE_EQ(a[9], 10.0);
    EXPECT_DOUBLE_EQ(a[11], 4.0);
    for (size_t i = 0; i < KernelMetrics::kCount; ++i)
        EXPECT_GT(std::string(KernelMetrics::name(i)).size(), 0u);
}

/**
 * Property sweep over devices: silicon invariants hold on every spec.
 */
class SiliconSpecProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    GpuSpec
    spec() const
    {
        switch (std::get<0>(GetParam())) {
          case 0: return voltaV100();
          case 1: return turingRtx2060();
          default: return ampereRtx3070();
        }
    }
};

TEST_P(SiliconSpecProperty, CyclesPositiveAndScaleWithIterations)
{
    SiliconGpu gpu(spec());
    uint32_t iters = 1u << std::get<1>(GetParam());
    auto k1 = kernel(160, 256, iters);
    auto k2 = kernel(160, 256, iters * 2);
    auto e1 = gpu.execute(k1, 5);
    auto e2 = gpu.execute(k2, 5);
    EXPECT_GT(e1.cycles, 0u);
    EXPECT_GT(e2.cycles, e1.cycles / 2); // monotone up to jitter
    EXPECT_GE(e2.threadIpc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, SiliconSpecProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(2, 4, 6)));
