/**
 * @file
 * CSV-dialect hardening tests: csvEscape/csvSplit round-trips over
 * adversarial field content (embedded quotes, commas, newlines), and
 * readSelection's behaviour on truncated or malformed input — every
 * truncation point must fatal() with a diagnostic, never return a
 * silently partial selection.
 */

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "core/pka.hh"
#include "core/serialize.hh"

using ::testing::HasSubstr;
using pka::common::ErrorKind;
using pka::core::csvEscape;
using pka::core::csvSplit;
using pka::core::readSelection;
using pka::core::readSelectionChecked;
using pka::core::writeSelection;

namespace
{

/** Join escaped fields into one CSV line. */
std::string
joinCsv(const std::vector<std::string> &fields)
{
    std::string line;
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            line += ',';
        line += csvEscape(fields[i]);
    }
    return line;
}

/** A selection with enough structure to exercise every row type. */
pka::core::SelectionOutcome
sampleSelection()
{
    pka::core::SelectionOutcome sel;
    sel.usedTwoLevel = true;
    sel.detailedCount = 100;
    sel.profilingCostSec = 12.5;
    sel.ensembleUnanimity = 0.875;
    for (uint32_t g = 0; g < 3; ++g) {
        pka::core::KernelGroup grp;
        grp.representative = g * 10;
        grp.representativeCycles = 1000 + g;
        grp.weight = 2.5 + g;
        grp.members = {g * 10, g * 10 + 1, g * 10 + 2};
        sel.groups.push_back(std::move(grp));
    }
    return sel;
}

} // namespace

TEST(CsvDialect, PlainFieldsPassThroughUnquoted)
{
    EXPECT_EQ(csvEscape("gemm_128"), "gemm_128");
    EXPECT_EQ(csvEscape(""), "");
    auto f = csvSplit("a,b,,d");
    ASSERT_EQ(f.size(), 4u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[2], "");
    EXPECT_EQ(f[3], "d");
}

TEST(CsvDialect, RoundTripsEmbeddedQuotesCommasAndNewlines)
{
    // Kernel names are attacker-ish input: templated C++ symbols carry
    // commas, and nothing stops a quote or newline from appearing.
    const std::vector<std::string> nasty = {
        "kernel<float, 4>",
        "say \"cheese\"",
        "line1\nline2",
        "\"",
        "\"\"",
        ",,,",
        "trailing,",
        ",leading",
        "mix\"of,every\nthing\"",
        "plain",
        "",
    };
    for (const auto &field : nasty) {
        auto f = csvSplit(csvEscape(field));
        ASSERT_EQ(f.size(), 1u) << "field '" << field << "'";
        EXPECT_EQ(f[0], field);
    }

    // And as a multi-field row.
    auto f = csvSplit(joinCsv(nasty));
    ASSERT_EQ(f.size(), nasty.size());
    for (size_t i = 0; i < nasty.size(); ++i)
        EXPECT_EQ(f[i], nasty[i]) << "field " << i;
}

TEST(CsvDialect, SplitHonoursQuotedCommas)
{
    auto f = csvSplit("1,\"a,b\",2");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "1");
    EXPECT_EQ(f[1], "a,b");
    EXPECT_EQ(f[2], "2");

    // Doubled quote inside a quoted field is one literal quote.
    f = csvSplit("\"he said \"\"hi\"\"\",x");
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], "he said \"hi\"");
    EXPECT_EQ(f[1], "x");
}

TEST(Selection, WriteReadRoundTrip)
{
    pka::core::SelectionOutcome sel = sampleSelection();
    std::ostringstream os;
    writeSelection(os, sel);
    std::istringstream is(os.str());
    pka::core::SelectionOutcome back = readSelection(is);

    EXPECT_EQ(back.usedTwoLevel, sel.usedTwoLevel);
    EXPECT_EQ(back.detailedCount, sel.detailedCount);
    EXPECT_EQ(back.profilingCostSec, sel.profilingCostSec);
    EXPECT_EQ(back.ensembleUnanimity, sel.ensembleUnanimity);
    ASSERT_EQ(back.groups.size(), sel.groups.size());
    for (size_t g = 0; g < sel.groups.size(); ++g) {
        EXPECT_EQ(back.groups[g].representative,
                  sel.groups[g].representative);
        EXPECT_EQ(back.groups[g].representativeCycles,
                  sel.groups[g].representativeCycles);
        EXPECT_EQ(back.groups[g].weight, sel.groups[g].weight);
        EXPECT_EQ(back.groups[g].members, sel.groups[g].members);
    }
}

TEST(SelectionDeathTest, EveryTruncationPointIsFatal)
{
    // Serialize once, then replay every strictly shorter line-prefix:
    // readSelection must fatal() on each, never return a partial
    // selection as if it were complete.
    std::ostringstream os;
    writeSelection(os, sampleSelection());
    std::vector<std::string> lines;
    {
        std::istringstream is(os.str());
        std::string line;
        while (std::getline(is, line))
            lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 3u);

    for (size_t keep = 0; keep < lines.size(); ++keep) {
        std::string truncated;
        for (size_t i = 0; i < keep; ++i)
            truncated += lines[i] + "\n";
        std::istringstream is(truncated);
        EXPECT_DEATH(readSelection(is), "truncated|magic")
            << "kept " << keep << " of " << lines.size() << " lines";
    }
}

TEST(SelectionDeathTest, MalformedContentIsFatal)
{
    std::istringstream not_magic("something else\n");
    EXPECT_DEATH(readSelection(not_magic), "magic");

    std::istringstream wrong_key(
        "# pka-selection v1\nnot_two_level,1\n");
    EXPECT_DEATH(readSelection(wrong_key), "expected 'two_level'");

    // Valid prefix, garbage group row.
    std::ostringstream os;
    writeSelection(os, sampleSelection());
    std::string text = os.str();
    std::string::size_type last = text.rfind("\n", text.size() - 2);
    std::string bad_row = text.substr(0, last + 1) + "0,zzz,1,1.0,0\n";
    std::istringstream is(bad_row);
    EXPECT_DEATH(readSelection(is), "malformed");
}

TEST(SelectionChecked, RoundTripMatchesLegacyReader)
{
    pka::core::SelectionOutcome sel = sampleSelection();
    std::ostringstream os;
    writeSelection(os, sel);
    std::istringstream is(os.str());
    auto r = readSelectionChecked(is);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().detailedCount, sel.detailedCount);
    ASSERT_EQ(r.value().groups.size(), sel.groups.size());
    EXPECT_EQ(r.value().groups[2].members, sel.groups[2].members);
}

TEST(SelectionChecked, EveryTruncationPointIsRecoverable)
{
    // The Checked reader turns every death above into a kBadInput
    // TaskError whose context pins the line — the campaign-facing
    // contract: a bad artifact is reportable and skippable, not fatal.
    std::ostringstream os;
    writeSelection(os, sampleSelection());
    std::vector<std::string> lines;
    {
        std::istringstream is(os.str());
        std::string line;
        while (std::getline(is, line))
            lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 3u);

    for (size_t keep = 0; keep < lines.size(); ++keep) {
        std::string truncated;
        for (size_t i = 0; i < keep; ++i)
            truncated += lines[i] + "\n";
        std::istringstream is(truncated);
        auto r = readSelectionChecked(is);
        ASSERT_FALSE(r.ok()) << "kept " << keep << " lines";
        EXPECT_EQ(r.error().kind, ErrorKind::kBadInput);
        EXPECT_THAT(r.error().context, HasSubstr("line "));
    }
}

TEST(SelectionChecked, MalformedFieldNamesLineAndField)
{
    std::ostringstream os;
    writeSelection(os, sampleSelection());
    std::string text = os.str();
    std::string::size_type last = text.rfind("\n", text.size() - 2);
    std::string bad_row = text.substr(0, last + 1) + "0,zzz,1,1.0,0\n";
    std::istringstream is(bad_row);
    auto r = readSelectionChecked(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::kBadInput);
    EXPECT_THAT(r.error().message, HasSubstr("malformed"));
    EXPECT_THAT(r.error().context, HasSubstr("field 'representative'"));
    // The bad row is the last line of the file.
    size_t row_line = 0, n = 0;
    for (char c : bad_row)
        if (c == '\n')
            ++n;
    row_line = n; // rows are 1-indexed; last line == line count
    EXPECT_THAT(r.error().context,
                HasSubstr("line " + std::to_string(row_line)));
}

TEST(ProfilesChecked, DetailedAndLightReportBadInput)
{
    {
        std::istringstream is("only,three,columns\n");
        auto r = pka::core::readDetailedProfilesChecked(is);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().kind, ErrorKind::kBadInput);
        EXPECT_THAT(r.error().message, HasSubstr("column count"));
        EXPECT_THAT(r.error().context, HasSubstr("line 1"));
    }
    {
        std::vector<pka::silicon::LightProfile> ps(1);
        ps[0].launchId = 7;
        ps[0].kernelName = "k";
        ps[0].tensorDims = {64, 32};
        std::ostringstream os;
        pka::core::writeLightProfiles(os, ps);
        std::istringstream good(os.str());
        auto r = pka::core::readLightProfilesChecked(good);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.value().size(), 1u);
        EXPECT_EQ(r.value()[0].tensorDims, ps[0].tensorDims);

        std::string text = os.str();
        std::istringstream bad(text + "8,k2,1,1,1,32,not_a_number,1,\n");
        auto rb = pka::core::readLightProfilesChecked(bad);
        ASSERT_FALSE(rb.ok());
        EXPECT_EQ(rb.error().kind, ErrorKind::kBadInput);
        EXPECT_THAT(rb.error().context, HasSubstr("field 'block_y'"));
    }
}
