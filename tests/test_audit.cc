/**
 * @file
 * Shadow-audit layer tests: the versioned (v2) signature-entry codec
 * with persisted audit stats (legacy v1 migration, version-skew and
 * invalid-field rejection), quarantine + adaptive tolerance governor on
 * the SignatureIndex, the engine's background audit lane end to end
 * (an adversarial near-miss donor is caught, quarantined and never
 * serves again; auditing never changes campaign outputs), the campaign
 * error budget (trip -> simulate-through, typed degraded outcome) and
 * fsck's scrubbing of audit-era entries.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "core/experiments.hh"
#include "core/pka.hh"
#include "silicon/gpu_spec.hh"
#include "sim/engine.hh"
#include "sim/simulator.hh"
#include "store/crc32.hh"
#include "store/file_store.hh"
#include "store/fsck.hh"
#include "store/sig_index.hh"
#include "workload/builder.hh"

namespace fs = std::filesystem;
using namespace pka::sim;
using namespace pka::store;
using namespace pka::workload;
using pka::silicon::voltaV100;

namespace
{

class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::temp_directory_path() /
                ("pka_audit_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

/** A kernel whose memory locality is a free parameter: the instruction
 *  mix, divergence and sector counts — everything the 12 signature
 *  counters observe — stay fixed while cache behaviour (and therefore
 *  cycles) moves. The signature tier's blind spot, by construction. */
ProgramPtr
aProg(const std::string &name, double locality)
{
    return ProgramBuilder(name)
        .seg(InstrClass::GlobalLoad, 4)
        .seg(InstrClass::FpAlu, 6)
        .seg(InstrClass::GlobalStore, 2)
        .mem(2.0, locality, locality)
        .divergence(1.0)
        .build();
}

KernelDescriptor
aLaunch(ProgramPtr p, uint32_t launch_id, uint32_t ctas,
        uint32_t iters = 2)
{
    KernelDescriptor k;
    k.launchId = launch_id;
    k.program = std::move(p);
    k.grid = {ctas, 1, 1};
    k.block = {128, 1, 1};
    k.iterations = iters;
    return k;
}

KernelSimKey
aKey(uint64_t salt)
{
    KernelSimKey k;
    k.specHash = 0xAAAA0000BBBB0000ULL;
    k.contentHash = 0x1234000056780000ULL + salt;
    k.workloadSeed = 7;
    k.seedSalt = salt;
    k.ipcBucketCycles = 30;
    k.ipcWindowBuckets = 100;
    return k;
}

SigEntry
aEntry(uint64_t salt, int32_t dim0 = 0)
{
    SigEntry e;
    e.sig.q[0] = dim0;
    e.key = aKey(salt);
    e.expThreadInsts = 1000.0;
    e.expWarpInsts = 100;
    e.numCtas = 64;
    return e;
}

EngineOptions
aOpts(const KernelResultStore *store, double tolerance,
      double audit_rate = 0.0)
{
    EngineOptions eo;
    eo.threads = 1;
    eo.memoize = true;
    eo.store = store;
    eo.xcacheTolerance = tolerance;
    eo.auditRate = audit_rate;
    return eo;
}

/** Rewrite the trailing CRC after an in-place patch. */
std::string
recrc(std::string bytes)
{
    uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
    std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
    return bytes;
}

std::string
patched(std::string bytes, size_t off, const void *v, size_t n)
{
    std::memcpy(bytes.data() + off, v, n);
    return recrc(std::move(bytes));
}

/** A byte-exact PR 8-era (v1, pre-audit) entry: the v2 encoding minus
 *  the audit fields, version field rewritten, CRC recomputed. */
std::string
v1Bytes(const SigEntry &e)
{
    std::string v2 = encodeSigEntry(e);
    std::string v1 = v2.substr(0, kSigEntrySizeV1 - 4);
    uint32_t version = 1;
    std::memcpy(v1.data() + 4, &version, 4);
    uint32_t crc = crc32(v1.data(), v1.size());
    v1.append(reinterpret_cast<const char *>(&crc), 4);
    return v1;
}

constexpr size_t kAuditCountOff = kSigEntrySizeV1 - 4;
constexpr size_t kVerdictOff = kAuditCountOff + 4;
constexpr size_t kErrEwmaOff = kVerdictOff + 4;

/** The on-disk path an entry would live at under a SignatureIndex
 *  rooted at `root` (<root>/<hh>/<hash16>.pks). */
fs::path
sigEntryFile(const fs::path &root, const SigEntry &e)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(
                      kernelSimKeyHash(e.key)));
    return root / std::string(hex).substr(0, 2) /
           (std::string(hex) + ".pks");
}

void
writeRaw(const fs::path &p, const std::string &bytes)
{
    fs::create_directories(p.parent_path());
    std::ofstream(p, std::ios::binary).write(bytes.data(), bytes.size());
}

} // namespace

// ---------------------------------------------------------------------
// Versioned codec.
// ---------------------------------------------------------------------

TEST(SigAuditCodec, V2RoundTripPreservesAuditStats)
{
    SigEntry in = aEntry(1, 17);
    in.auditCount = 5;
    in.verdict = SigVerdict::kQuarantined;
    in.errEwma = 0.25;
    std::string bytes = encodeSigEntry(in);
    ASSERT_EQ(bytes.size(), kSigEntrySize);

    SigEntry out;
    uint32_t version = 0;
    ASSERT_EQ(decodeSigEntryEx(bytes.data(), bytes.size(), &out, &version),
              SigDecodeStatus::kOk);
    EXPECT_EQ(version, 2u);
    EXPECT_EQ(out.auditCount, 5u);
    EXPECT_EQ(out.verdict, SigVerdict::kQuarantined);
    EXPECT_DOUBLE_EQ(out.errEwma, 0.25);
    EXPECT_EQ(out.key, in.key);
}

TEST(SigAuditCodec, LegacyV1ReadsAsUnaudited)
{
    SigEntry in = aEntry(2, 9);
    std::string v1 = v1Bytes(in);
    ASSERT_EQ(v1.size(), kSigEntrySizeV1);

    SigEntry out;
    uint32_t version = 0;
    ASSERT_EQ(decodeSigEntryEx(v1.data(), v1.size(), &out, &version),
              SigDecodeStatus::kOk);
    EXPECT_EQ(version, 1u);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.sig, in.sig);
    // Audit fields take their defaults: never audited, never judged.
    EXPECT_EQ(out.auditCount, 0u);
    EXPECT_EQ(out.verdict, SigVerdict::kUnaudited);
    EXPECT_DOUBLE_EQ(out.errEwma, 0.0);

    // The wrapper bool API agrees.
    EXPECT_TRUE(decodeSigEntry(v1.data(), v1.size(), &out));
}

TEST(SigAuditCodec, VersionSkewAndTornWritesRejected)
{
    SigEntry in = aEntry(3, 4);
    std::string v2 = encodeSigEntry(in);
    std::string v1 = v1Bytes(in);
    SigEntry out;
    uint32_t version = 0;

    // v2-length bytes claiming v1: intact CRC, lying version.
    uint32_t one = 1, two = 2, three = 3;
    std::string skew_a = patched(v2, 4, &one, 4);
    EXPECT_EQ(decodeSigEntryEx(skew_a.data(), skew_a.size(), &out,
                               &version),
              SigDecodeStatus::kVersionSkew);

    // v1-length bytes claiming v2.
    std::string skew_b = patched(v1, 4, &two, 4);
    EXPECT_EQ(decodeSigEntryEx(skew_b.data(), skew_b.size(), &out,
                               &version),
              SigDecodeStatus::kVersionSkew);

    // A future version this build has never heard of.
    std::string skew_c = patched(v2, 4, &three, 4);
    EXPECT_EQ(decodeSigEntryEx(skew_c.data(), skew_c.size(), &out,
                               &version),
              SigDecodeStatus::kVersionSkew);

    // A v2 record torn back to the v1 length fails the CRC — corrupt,
    // not skew (its last four bytes are audit payload, not a checksum).
    std::string torn = v2.substr(0, kSigEntrySizeV1);
    EXPECT_EQ(decodeSigEntryEx(torn.data(), torn.size(), &out, &version),
              SigDecodeStatus::kCorrupt);
}

TEST(SigAuditCodec, InvalidAuditFieldsRejected)
{
    std::string v2 = encodeSigEntry(aEntry(4, 2));
    SigEntry out;

    uint32_t bad_verdict = 7; // beyond kQuarantined
    std::string b1 = patched(v2, kVerdictOff, &bad_verdict, 4);
    EXPECT_EQ(decodeSigEntryEx(b1.data(), b1.size(), &out, nullptr),
              SigDecodeStatus::kCorrupt);

    double neg = -0.5;
    std::string b2 = patched(v2, kErrEwmaOff, &neg, 8);
    EXPECT_EQ(decodeSigEntryEx(b2.data(), b2.size(), &out, nullptr),
              SigDecodeStatus::kCorrupt);

    double nan = std::nan("");
    std::string b3 = patched(v2, kErrEwmaOff, &nan, 8);
    EXPECT_EQ(decodeSigEntryEx(b3.data(), b3.size(), &out, nullptr),
              SigDecodeStatus::kCorrupt);
}

// ---------------------------------------------------------------------
// SignatureIndex: quarantine, governor, persistence, migration.
// ---------------------------------------------------------------------

TEST(SigAuditIndex, ViolationQuarantinesAndPersistsAcrossReopen)
{
    TempDir dir;
    uint64_t key_hash = 0;
    {
        SignatureIndex idx(dir.str());
        SigEntry e = aEntry(10, 3);
        idx.insert(e);
        key_hash = kernelSimKeyHash(e.key);

        KernelSignature sig;
        sig.q[0] = 3;
        ASSERT_TRUE(idx.probe(sig, 0.0).hit);

        idx.recordAudit(key_hash, /*observedErr=*/0.4,
                        /*violation=*/true);
        EXPECT_FALSE(idx.probe(sig, 0.0).hit); // never served again

        SigIndexStatsSnapshot s = idx.stats();
        EXPECT_EQ(s.auditsRecorded, 1u);
        EXPECT_EQ(s.auditViolations, 1u);
        EXPECT_EQ(s.quarantined, 1u);
        EXPECT_EQ(s.governorTightened, 1u);
        EXPECT_DOUBLE_EQ(s.governorMinScale, 0.5);
    }

    // The verdict survives the process: a reopened index refuses the
    // quarantined entry without re-auditing anything.
    SignatureIndex reopened(dir.str());
    EXPECT_EQ(reopened.size(), 1u);
    KernelSignature sig;
    sig.q[0] = 3;
    EXPECT_FALSE(reopened.probe(sig, 0.0).hit);
    EXPECT_EQ(reopened.stats().quarantined, 1u);
}

TEST(SigAuditIndex, CleanAuditsUpdateEwmaAndVerdict)
{
    TempDir dir;
    SignatureIndex idx(dir.str());
    SigEntry e = aEntry(11, 0);
    idx.insert(e);
    uint64_t key_hash = kernelSimKeyHash(e.key);

    // First observation seeds the EWMA directly; the second blends
    // with alpha = kAuditEwmaAlpha.
    idx.recordAudit(key_hash, 0.08, false);
    idx.recordAudit(key_hash, 0.04, false);

    KernelSignature sig; // all zeros
    SigProbe p = idx.probe(sig, 0.0);
    ASSERT_TRUE(p.hit);
    EXPECT_EQ(p.entry.verdict, SigVerdict::kClean);
    EXPECT_EQ(p.entry.auditCount, 2u);
    double want = SignatureIndex::kAuditEwmaAlpha * 0.04 +
                  (1.0 - SignatureIndex::kAuditEwmaAlpha) * 0.08;
    EXPECT_DOUBLE_EQ(p.entry.errEwma, want);
    EXPECT_EQ(idx.stats().auditViolations, 0u);
}

TEST(SigAuditIndex, GovernorTightensNeighborhoodThenRelaxes)
{
    TempDir dir;
    SignatureIndex idx(dir.str());
    // Two entries in the same governor neighborhood (cells pool in
    // blocks of 64): one will be caught lying, one stays honest.
    SigEntry liar = aEntry(20, 10);
    SigEntry honest = aEntry(21, 30);
    idx.insert(liar);
    idx.insert(honest);

    // Before the violation, the honest entry serves at distance
    // 30 steps under a tolerance of 40 steps.
    KernelSignature probe_sig; // zeros
    const double tol = 40 * kSigQuantStep;
    ASSERT_TRUE(idx.probe(probe_sig, tol).hit);

    // Violation on the liar: quarantine + the whole neighborhood's
    // tolerance halves, so the honest entry at 30 steps no longer
    // clears 40 * 0.5 = 20 steps.
    idx.recordAudit(kernelSimKeyHash(liar.key), 0.5, true);
    EXPECT_FALSE(idx.probe(probe_sig, tol).hit);
    // A nearer probe still clears the tightened gate.
    KernelSignature near_sig;
    near_sig.q[0] = 25;
    EXPECT_TRUE(idx.probe(near_sig, tol).hit);

    // Eight clean audits on the honest entry earn one cautious relax:
    // 0.5 * 1.25 = 0.625, and 40 * 0.625 = 25 steps just serves the
    // honest entry at 25 steps' distance... but not at 30.
    for (int i = 0; i < 8; ++i)
        idx.recordAudit(kernelSimKeyHash(honest.key), 0.01, false);
    SigIndexStatsSnapshot s = idx.stats();
    EXPECT_EQ(s.governorTightened, 1u);
    EXPECT_EQ(s.governorRelaxed, 1u);
    EXPECT_DOUBLE_EQ(s.governorMinScale, 0.625);
    EXPECT_FALSE(idx.probe(probe_sig, tol).hit); // 30 > 25: still shy
    KernelSignature at25;
    at25.q[0] = 5;
    EXPECT_TRUE(idx.probe(at25, tol).hit); // 25 <= 25: serves again
}

TEST(SigAuditIndex, LegacyEntriesLoadAsUnaudited)
{
    TempDir dir;
    SigEntry e = aEntry(30, 6);
    uint64_t key_hash = kernelSimKeyHash(e.key);
    fs::path p = sigEntryFile(dir.path(), e);
    writeRaw(p, v1Bytes(e));

    SignatureIndex idx(dir.str());
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx.stats().legacyLoaded, 1u);
    KernelSignature sig;
    sig.q[0] = 6;
    SigProbe probe = idx.probe(sig, 0.0);
    ASSERT_TRUE(probe.hit); // pre-audit entries still serve
    EXPECT_EQ(probe.entry.verdict, SigVerdict::kUnaudited);
    EXPECT_EQ(probe.entry.auditCount, 0u);

    // The first audit migrates it: persisted back at the v2 size.
    idx.recordAudit(key_hash, 0.02, false);
    EXPECT_EQ(fs::file_size(p), kSigEntrySize);
    SignatureIndex reopened(dir.str());
    EXPECT_EQ(reopened.stats().legacyLoaded, 0u);
    SigProbe again = reopened.probe(sig, 0.0);
    ASSERT_TRUE(again.hit);
    EXPECT_EQ(again.entry.verdict, SigVerdict::kClean);
}

// ---------------------------------------------------------------------
// fsck: audit-era scrubbing.
// ---------------------------------------------------------------------

TEST(SigAuditFsck, CountsLegacyAndRejectsVersionSkew)
{
    TempDir dir;
    // fsck scans the sig tier where the store mounts it: <root>/sig.
    fs::path sig_root = dir.path() / "sig";
    // One live v2 entry, one legacy v1 entry, one version-skewed file.
    {
        SignatureIndex idx(sig_root.string());
        idx.insert(aEntry(40, 1));
    }
    SigEntry legacy = aEntry(41, 2);
    writeRaw(sigEntryFile(sig_root, legacy), v1Bytes(legacy));
    SigEntry skewed = aEntry(42, 3);
    uint32_t one = 1;
    // v2-length bytes with a v1 tag: a mixed-version write.
    writeRaw(sigEntryFile(sig_root, skewed),
             patched(encodeSigEntry(skewed), 4, &one, 4));

    FsckOptions scan;
    FsckReport rep = fsckStore(dir.str(), scan);
    EXPECT_EQ(rep.sigScanned, 3u);
    EXPECT_EQ(rep.sigValid, 2u);
    EXPECT_EQ(rep.sigLegacy, 1u);
    EXPECT_EQ(rep.sigVersionSkew, 1u);
    EXPECT_EQ(rep.sigCorrupt, 0u);
    EXPECT_FALSE(rep.clean()); // skew is damage

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixed = fsckStore(dir.str(), repair);
    EXPECT_EQ(fixed.sigVersionSkew, 1u);
    EXPECT_EQ(fixed.quarantinedFiles, 1u);

    // After repair the tree is sound and the index loads the two good
    // entries (the skewed record is parked, never served).
    FsckReport clean = fsckStore(dir.str(), scan);
    EXPECT_TRUE(clean.clean());
    SignatureIndex idx(sig_root.string());
    EXPECT_EQ(idx.size(), 2u);
}

// ---------------------------------------------------------------------
// Engine audit lane, end to end.
// ---------------------------------------------------------------------

TEST(AuditLane, CatchesAdversarialNearMissAndQuarantinesDonor)
{
    TempDir dir;
    KernelResultStore store(dir.str(), /*similarity=*/true);
    SimEngine engine(aOpts(&store, 0.05, /*audit_rate=*/1.0));
    GpuSimulator simulator(voltaV100());

    // The adversarial pair: counter-identical, cycle-divergent.
    KernelDescriptor donor_k = aLaunch(aProg("hot", 0.95), 0, 60);
    KernelDescriptor target_k = aLaunch(aProg("cold", 0.05), 1, 60);
    ASSERT_EQ(sigDistance(signatureOf(donor_k), signatureOf(target_k)),
              0.0);

    SimJob jd;
    jd.kernel = &donor_k;
    jd.workloadSeed = 7;
    KernelSimResult donor = engine.simulateOne(simulator, jd);
    ASSERT_FALSE(donor.projected);

    // Ground truth for the target, computed out of band: the cycle
    // behaviours genuinely diverge (this is what makes the projection
    // a lie the audit must catch).
    SimJob jt;
    jt.kernel = &target_k;
    jt.workloadSeed = 7;
    GpuSimulator ref(voltaV100());
    KernelSimResult truth = ref.simulateKernel(target_k, 7);
    ASSERT_NE(truth.cycles, donor.cycles);

    KernelSimResult proj = engine.simulateOne(simulator, jt);
    ASSERT_TRUE(proj.projected);
    EXPECT_DOUBLE_EQ(proj.projectionErrorBound, 0.0); // certified exact
    EXPECT_EQ(proj.cycles, donor.cycles);             // ...and wrong

    engine.auditDrain();
    SimEngine::AuditSnapshot au = engine.auditStats();
    EXPECT_EQ(au.sampled, 1u);
    EXPECT_EQ(au.run, 1u);
    EXPECT_EQ(au.violations, 1u);
    EXPECT_EQ(au.shed, 0u);
    EXPECT_GT(au.maxObservedErr, 0.0);

    ASSERT_NE(store.similarity(), nullptr);
    SigIndexStatsSnapshot s = store.similarity()->stats();
    EXPECT_EQ(s.auditsRecorded, 1u);
    EXPECT_EQ(s.auditViolations, 1u);
    EXPECT_EQ(s.quarantined, 1u);
    EXPECT_GE(s.governorTightened, 1u);

    // The quarantined donor never serves again: a third near-duplicate
    // simulates instead of projecting.
    KernelDescriptor third_k = aLaunch(aProg("cold2", 0.05), 2, 60);
    SimJob j3;
    j3.kernel = &third_k;
    j3.workloadSeed = 7;
    KernelSimResult r3 = engine.simulateOne(simulator, j3);
    EXPECT_FALSE(r3.projected);

    // Healing: the audit persisted the target's ground truth to the
    // exact store, so a fresh engine answers it exactly — no
    // projection, no re-simulation.
    SimEngine fresh(aOpts(&store, 0.05));
    EngineStats st{};
    KernelSimResult healed = fresh.simulateOne(simulator, jt, &st);
    EXPECT_FALSE(healed.projected);
    EXPECT_EQ(st.storeHits, 1u);
    EXPECT_EQ(healed.cycles, truth.cycles);
}

TEST(AuditLane, AuditingNeverChangesCampaignOutputs)
{
    GpuSimulator simulator(voltaV100());
    Workload w;
    w.suite = "test";
    w.name = "audit_identity";
    w.seed = 7;
    ProgramPtr p = aProg("fleet", 0.6);
    for (uint32_t i = 0; i < 8; ++i)
        w.launches.push_back(
            aLaunch(p, i, 40 + (i % 4) * 20, 2 + i % 2));

    auto run = [&](double audit_rate) {
        TempDir dir;
        KernelResultStore store(dir.str(), true);
        SimEngine engine(aOpts(&store, 0.05, audit_rate));
        pka::core::FullSimResult r =
            pka::core::fullSimulate(engine, simulator, w);
        engine.auditDrain();
        return r;
    };
    pka::core::FullSimResult off = run(0.0);
    pka::core::FullSimResult on = run(1.0);

    // The audit lane observes; it never participates. Every aggregate
    // and per-launch result is bit-identical with auditing at 100%.
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.threadInsts, off.threadInsts);
    EXPECT_EQ(on.projectedLaunches, off.projectedLaunches);
    ASSERT_EQ(on.perKernel.size(), off.perKernel.size());
    for (size_t i = 0; i < on.perKernel.size(); ++i) {
        EXPECT_EQ(on.perKernel[i].cycles, off.perKernel[i].cycles);
        EXPECT_EQ(on.perKernel[i].projected, off.perKernel[i].projected);
    }
}

TEST(AuditLane, DeterministicSamplingIsReproducible)
{
    // Same keys + same seed => same sample set, across engines and
    // thread counts (the coin is keyed per target, not per worker).
    // Every queued audit is shed, so the lane never simulates truth,
    // never quarantines, and cannot perturb which launches project —
    // the sampled count depends on the keys and the seed alone.
    GpuSimulator simulator(voltaV100());
    ProgramPtr p = aProg("sample", 0.5);

    auto sampled_count = [&](unsigned threads) {
        TempDir dir;
        KernelResultStore store(dir.str(), true);
        EngineOptions eo = aOpts(&store, 0.05, 0.5);
        eo.threads = threads;
        eo.auditSeed = 99;
        eo.auditShed = [] { return true; };
        SimEngine engine(eo);
        for (uint32_t i = 0; i < 12; ++i) {
            KernelDescriptor k = aLaunch(p, 100 + i, 60 + 10 * i);
            SimJob j;
            j.kernel = &k;
            j.workloadSeed = 7;
            engine.simulateOne(simulator, j);
        }
        engine.auditDrain();
        SimEngine::AuditSnapshot au = engine.auditStats();
        EXPECT_EQ(au.run, 0u);          // everything shed...
        EXPECT_EQ(au.shed, au.sampled); // ...and accounted for
        return au.sampled;
    };
    uint64_t a = sampled_count(1);
    uint64_t b = sampled_count(4);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u); // a 50% coin over 11 projections picked some
}

// ---------------------------------------------------------------------
// Campaign error budget.
// ---------------------------------------------------------------------

TEST(ErrorBudget, TripSwitchesTailToSimulateThrough)
{
    TempDir dir;
    KernelResultStore store(dir.str(), true);
    GpuSimulator simulator(voltaV100());

    // iterations 2 vs 3 is a real per-CTA work shift: projections from
    // the cross-iteration donor carry a nonzero certified error bound,
    // which is what the budget accounts.
    ProgramPtr p = aProg("budget", 0.6);
    KernelDescriptor probe_a = aLaunch(p, 0, 60, 2);
    KernelDescriptor probe_b = aLaunch(p, 1, 60, 3);
    double d = sigDistance(signatureOf(probe_a), signatureOf(probe_b));
    ASSERT_GT(d, 0.0);

    Workload w;
    w.suite = "test";
    w.name = "budget_trip";
    w.seed = 7;
    w.launches.push_back(aLaunch(p, 0, 60, 2)); // simulated donor
    for (uint32_t i = 1; i < 8; ++i)            // cross-iteration twins
        w.launches.push_back(aLaunch(p, i, 60 + 10 * i, 3));

    SimEngine engine(aOpts(&store, d * 1.5));
    pka::core::CampaignCheckpoint cp; // chunking without journaling
    cp.chunkLaunches = 2;
    pka::core::CampaignPolicy policy;
    policy.errorBudget = 1e-4; // far below one projection's bound

    pka::core::FullSimResult res = pka::core::fullSimulate(
        engine, simulator, w, &cp, &policy);

    // The budget tripped: the campaign completed (every launch has a
    // result, none failed) but the tail ran simulate-through.
    EXPECT_TRUE(res.accuracyDegraded);
    EXPECT_GT(res.certifiedError, policy.errorBudget);
    EXPECT_EQ(res.failedLaunches, 0u);
    EXPECT_TRUE(res.quorumMet);
    EXPECT_EQ(res.perKernel.size(), w.launches.size());
    // At least one launch projected (that is what tripped it), and at
    // least one later twin was forced to simulate despite an in-bound
    // donor being available.
    EXPECT_GE(res.projectedLaunches, 1u);
    EXPECT_LT(res.projectedLaunches, w.launches.size() - 1);

    // Same campaign, no budget: the tail keeps projecting.
    TempDir dir2;
    KernelResultStore store2(dir2.str(), true);
    SimEngine engine2(aOpts(&store2, d * 1.5));
    pka::core::CampaignPolicy open;
    pka::core::FullSimResult free_run = pka::core::fullSimulate(
        engine2, simulator, w, &cp, &open);
    EXPECT_FALSE(free_run.accuracyDegraded);
    EXPECT_GT(free_run.projectedLaunches, res.projectedLaunches);
}

// ---------------------------------------------------------------------
// Similarity tier x checkpoint/resume: a torn journal mid-campaign with
// projected results in flight resumes bit-identically.
// ---------------------------------------------------------------------

TEST(XcacheResume, TornJournalWithProjectionsInFlightResumesBitIdentical)
{
    if (!pka::common::kFaultInjectionCompiledIn)
        GTEST_SKIP() << "built with -DPKA_FAULT_INJECTION=OFF";
    pka::common::FaultInjector::instance().reset();

    TempDir dir;
    fs::path store_dir = dir.path() / "store";
    fs::path ckpt_dir = dir.path() / "ckpt";
    fs::create_directories(ckpt_dir);

    GpuSimulator simulator(voltaV100());
    Workload w;
    w.suite = "test";
    w.name = "xcache_resume";
    w.seed = 7;
    // One shape at many grid sizes: launch 0 simulates (the donor),
    // the rest project at distance 0 — projections in flight from the
    // first chunk on.
    ProgramPtr p = aProg("resume", 0.6);
    for (uint32_t i = 0; i < 12; ++i)
        w.launches.push_back(aLaunch(p, i, 40 + 10 * i));

    pka::core::CampaignCheckpoint cp;
    cp.dir = ckpt_dir.string();
    cp.chunkLaunches = 3;

    // Crash leg: the journal append for launch 5 tears mid-write
    // ("done," reaches disk without an index or newline), so every
    // journal line after it is unreadable on resume.
    pka::core::FullSimResult base;
    {
        KernelResultStore store(store_dir.string(), /*similarity=*/true);
        SimEngine engine(aOpts(&store, 0.05));
        std::vector<pka::common::FaultSpec> specs;
        specs.push_back({.site = "journal.append",
                         .kind = pka::common::FaultKind::kShortWrite,
                         .matchKey = 5,
                         .maxFires = 1});
        pka::common::FaultInjector::instance().configure(specs, 1);
        cp.resume = false;
        base = pka::core::fullSimulate(engine, simulator, w, &cp);
        pka::common::FaultInjector::instance().reset();
    }
    ASSERT_GT(base.projectedLaunches, 0u);
    ASSERT_EQ(base.perKernel.size(), w.launches.size());

    // Resume leg: fresh "process" (cold memory cache, reopened store and
    // sig index), injector disarmed. The trusted prefix is credited, the
    // torn tail re-runs — simulated launches re-hit the exact store,
    // projected launches re-project from the persisted donor entry.
    KernelResultStore store(store_dir.string(), /*similarity=*/true);
    SimEngine engine(aOpts(&store, 0.05));
    cp.resume = true;
    pka::core::FullSimResult resumed =
        pka::core::fullSimulate(engine, simulator, w, &cp);

    EXPECT_GT(resumed.resumedLaunches, 0u);
    EXPECT_LT(resumed.resumedLaunches, w.launches.size()); // real tear
    EXPECT_EQ(resumed.cycles, base.cycles);
    EXPECT_EQ(resumed.threadInsts, base.threadInsts);
    EXPECT_EQ(resumed.dramUtilPct, base.dramUtilPct);
    EXPECT_EQ(resumed.projectedLaunches, base.projectedLaunches);
    EXPECT_EQ(resumed.projErrBound, base.projErrBound);
    ASSERT_EQ(resumed.perKernel.size(), base.perKernel.size());
    for (size_t i = 0; i < base.perKernel.size(); ++i) {
        EXPECT_EQ(resumed.perKernel[i].launchId,
                  base.perKernel[i].launchId);
        EXPECT_EQ(resumed.perKernel[i].cycles, base.perKernel[i].cycles);
        // Provenance survives the crash: the same launches carry the
        // same projection tags with the same certified bounds.
        EXPECT_EQ(resumed.perKernel[i].projected,
                  base.perKernel[i].projected);
        EXPECT_EQ(resumed.perKernel[i].projErrBound,
                  base.perKernel[i].projErrBound);
    }
}
