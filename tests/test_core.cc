/**
 * @file
 * PKA-core tests: feature engineering, Principal Kernel Selection,
 * Principal Kernel Projection (detector + projection math), two-level
 * classification, and the three baselines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/baselines.hh"
#include "core/features.hh"
#include "core/pka.hh"
#include "core/pkp.hh"
#include "core/pks.hh"
#include "core/serialize.hh"
#include "core/two_level.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "workload/builder.hh"
#include "workload/suites.hh"

using namespace pka;
using namespace pka::core;

namespace
{

/** Synthesize a detailed profile with controllable metrics. */
silicon::DetailedProfile
makeProfile(uint32_t id, const std::string &name, double insts,
            double loads, uint64_t cycles, double ctas = 64)
{
    silicon::DetailedProfile p;
    p.launchId = id;
    p.kernelName = name;
    p.cycles = cycles;
    p.metrics.instructions = insts;
    p.metrics.threadGlobalLoads = loads;
    p.metrics.coalescedGlobalLoads = loads * 2;
    p.metrics.threadGlobalStores = loads / 2;
    p.metrics.coalescedGlobalStores = loads;
    p.metrics.divergenceEff = 32;
    p.metrics.numCtas = ctas;
    return p;
}

/** Two interleaved kernel families, `n` launches each. */
std::vector<silicon::DetailedProfile>
twoFamilies(int n, uint64_t cycles_a = 1000, uint64_t cycles_b = 5000)
{
    std::vector<silicon::DetailedProfile> ps;
    for (int i = 0; i < n; ++i) {
        ps.push_back(makeProfile(2 * i, "alpha", 1e6 * (1 + 0.01 * (i % 3)),
                                 1e4, cycles_a + (i % 5)));
        ps.push_back(makeProfile(2 * i + 1, "beta",
                                 5e7 * (1 + 0.01 * (i % 3)), 4e6,
                                 cycles_b + (i % 7)));
    }
    return ps;
}

sim::KernelSimResult
truncatedResult(uint64_t cycles, uint64_t finished, uint64_t in_flight,
                uint64_t total, double insts)
{
    sim::KernelSimResult r;
    r.cycles = cycles;
    r.finishedCtas = finished;
    r.inFlightCtas = in_flight;
    r.totalCtas = total;
    r.threadInstructions = insts;
    r.warpInstructions = static_cast<uint64_t>(insts / 32);
    r.expectedWarpInstructions = static_cast<uint64_t>(insts / 32) * 2;
    r.stoppedEarly = true;
    return r;
}

} // namespace

TEST(Features, DetailedFeaturesLogCompressCounts)
{
    auto ps = twoFamilies(2);
    ml::Matrix X = detailedFeatures(ps);
    EXPECT_EQ(X.rows(), 4u);
    EXPECT_EQ(X.cols(), silicon::KernelMetrics::kCount);
    // instructions column (index 9) is log1p'd.
    EXPECT_NEAR(X.at(0, 9), std::log1p(ps[0].metrics.instructions), 1e-9);
    // divergence column (index 10) passes through.
    EXPECT_DOUBLE_EQ(X.at(0, 10), 32.0);
}

TEST(Features, LightFeatureVectorShape)
{
    silicon::LightProfile p;
    p.kernelName = "k";
    p.grid = {64, 1, 1};
    p.block = {256, 1, 1};
    auto v = lightFeatureVector(p);
    EXPECT_EQ(v.size(), kLightFeatureCount);
    // Name embedding is deterministic.
    silicon::LightProfile q = p;
    EXPECT_EQ(lightFeatureVector(q), v);
    q.kernelName = "other";
    EXPECT_NE(lightFeatureVector(q), v);
}

TEST(Features, TensorDimsVisibleInLightFeatures)
{
    silicon::LightProfile a, b;
    a.kernelName = b.kernelName = "k";
    a.grid = b.grid = {8, 1, 1};
    a.block = b.block = {128, 1, 1};
    b.tensorDims = {64, 3, 224, 224};
    EXPECT_NE(lightFeatureVector(a), lightFeatureVector(b));
}

TEST(Pks, TwoFamiliesYieldTwoGroups)
{
    auto ps = twoFamilies(50);
    PksResult res = principalKernelSelection(ps);
    EXPECT_EQ(res.groups.size(), 2u);
    EXPECT_LT(res.projectedErrorPct, 5.0);
    // Representatives are the first chronological members.
    for (const auto &g : res.groups)
        for (uint32_t m : g.members)
            EXPECT_LE(g.representative, m);
    double total_weight = 0;
    for (const auto &g : res.groups)
        total_weight += g.weight;
    EXPECT_DOUBLE_EQ(total_weight, 100.0);
}

TEST(Pks, IdenticalKernelsCollapseToOneGroup)
{
    std::vector<silicon::DetailedProfile> ps;
    for (int i = 0; i < 30; ++i)
        ps.push_back(makeProfile(i, "same", 1e6, 1e4, 1000 + (i % 3)));
    PksResult res = principalKernelSelection(ps);
    EXPECT_EQ(res.groups.size(), 1u);
    EXPECT_EQ(res.groups[0].representative, 0u);
    EXPECT_NEAR(res.siliconSpeedup(), 30.0, 1.0);
}

TEST(Pks, HeterogeneousCyclesForceMoreGroups)
{
    // Same code signature but wildly different cycle totals (driven by a
    // feature PCA sees: instructions). K must grow to meet 5% error.
    std::vector<silicon::DetailedProfile> ps;
    for (int i = 0; i < 24; ++i) {
        double scale = std::pow(4.0, i % 4);
        ps.push_back(makeProfile(i, "k", 1e5 * scale, 1e3 * scale,
                                 static_cast<uint64_t>(500 * scale)));
    }
    PksResult res = principalKernelSelection(ps);
    EXPECT_GE(res.groups.size(), 3u);
    EXPECT_LT(res.projectedErrorPct, 5.0);
}

TEST(Pks, SingleProfile)
{
    std::vector<silicon::DetailedProfile> ps = {
        makeProfile(0, "only", 1e5, 10, 777)};
    PksResult res = principalKernelSelection(ps);
    EXPECT_EQ(res.groups.size(), 1u);
    EXPECT_DOUBLE_EQ(res.projectedCycles, 777.0);
    EXPECT_NEAR(res.projectedErrorPct, 0.0, 1e-9);
}

TEST(Pks, RespectsTargetError)
{
    auto ps = twoFamilies(50, 1000, 1300); // families close in cycles
    PksOptions loose;
    loose.targetErrorPct = 25.0;
    PksOptions tight;
    tight.targetErrorPct = 0.5;
    auto gl = principalKernelSelection(ps, loose);
    auto gt = principalKernelSelection(ps, tight);
    EXPECT_LE(gl.groups.size(), gt.groups.size());
}

TEST(Pks, EvaluateSelectionOnAnotherDevice)
{
    auto ps = twoFamilies(10);
    PksResult res = principalKernelSelection(ps);
    // "Turing" cycles: everything 2x slower.
    std::vector<uint64_t> cycles(20);
    for (const auto &p : ps)
        cycles[p.launchId] = p.cycles * 2;
    SelectionEvaluation ev = evaluateSelection(res.groups, cycles);
    EXPECT_LT(ev.errorPct, 5.0);
    EXPECT_GT(ev.speedup, 5.0);
    EXPECT_NEAR(ev.trueCycles,
                2.0 * res.profiledCycles, res.profiledCycles * 0.01);
}

TEST(Pkp, DetectorRequiresFullWindow)
{
    IpcStabilityController c;
    sim::StopController::Snapshot s;
    s.windowFull = false;
    s.windowIpcMean = 100;
    s.windowIpcStd = 0.1;
    s.finishedCtas = 1000;
    s.totalCtas = 2000;
    s.waveSize = 100;
    c.beginKernel(s);
    EXPECT_FALSE(c.shouldStop(s));
    s.windowFull = true;
    EXPECT_TRUE(c.shouldStop(s));
    EXPECT_TRUE(c.triggered());
}

TEST(Pkp, DetectorThreshold)
{
    PkpOptions o;
    o.threshold = 0.25;
    IpcStabilityController c(o);
    sim::StopController::Snapshot s;
    s.windowFull = true;
    s.windowIpcMean = 100;
    s.finishedCtas = 500;
    s.totalCtas = 1000;
    s.waveSize = 100;
    s.windowIpcStd = 30; // 0.3 normalized: unstable
    EXPECT_FALSE(c.shouldStop(s));
    s.windowIpcStd = 20; // 0.2: stable
    EXPECT_TRUE(c.shouldStop(s));
}

TEST(Pkp, WaveConstraintBlocksEarlyStop)
{
    IpcStabilityController c;
    sim::StopController::Snapshot s;
    s.windowFull = true;
    s.windowIpcMean = 100;
    s.windowIpcStd = 1;
    s.waveSize = 160;
    s.totalCtas = 1000;
    s.finishedCtas = 80; // less than a wave
    EXPECT_FALSE(c.shouldStop(s));
    s.finishedCtas = 160;
    EXPECT_TRUE(c.shouldStop(s));
}

TEST(Pkp, SmallGridsExemptFromWaveConstraint)
{
    IpcStabilityController c;
    sim::StopController::Snapshot s;
    s.windowFull = true;
    s.windowIpcMean = 100;
    s.windowIpcStd = 1;
    s.waveSize = 160;
    s.totalCtas = 40; // grid smaller than one wave
    s.finishedCtas = 0;
    EXPECT_TRUE(c.shouldStop(s));
}

TEST(Pkp, WaveConstraintCanBeDisabled)
{
    PkpOptions o;
    o.requireFullWave = false;
    IpcStabilityController c(o);
    sim::StopController::Snapshot s;
    s.windowFull = true;
    s.windowIpcMean = 100;
    s.windowIpcStd = 1;
    s.waveSize = 160;
    s.totalCtas = 1000;
    s.finishedCtas = 10;
    EXPECT_TRUE(c.shouldStop(s));
}

TEST(Pkp, ZeroMeanWindowNeverStable)
{
    IpcStabilityController c;
    sim::StopController::Snapshot s;
    s.windowFull = true;
    s.windowIpcMean = 0.0;
    s.windowIpcStd = 0.0;
    s.totalCtas = 10;
    s.waveSize = 160;
    EXPECT_FALSE(c.shouldStop(s));
}

TEST(Pkp, ProjectionScalesWithRemainingCtas)
{
    // 100 of 400 CTAs finished in 1000 cycles, none in flight:
    // remaining 300 at the same rate => 4000 total.
    auto r = truncatedResult(1000, 100, 0, 400, 3.2e6);
    PkpProjection p = projectKernel(r);
    EXPECT_TRUE(p.wasProjected);
    EXPECT_EQ(p.projectedCycles, 4000u);
    EXPECT_NEAR(p.projectedThreadInstructions, 3.2e6 * 4, 1.0);
}

TEST(Pkp, ProjectionCreditsInFlightCtas)
{
    // 100 finished + 100 in flight (half-done): remaining = 300 - 50.
    auto r = truncatedResult(1000, 100, 100, 400, 3.2e6);
    PkpProjection p = projectKernel(r);
    EXPECT_EQ(p.projectedCycles, 1000u + 2500u);
}

TEST(Pkp, CompletedKernelPassesThrough)
{
    auto r = truncatedResult(1000, 400, 0, 400, 3.2e6);
    r.stoppedEarly = false;
    PkpProjection p = projectKernel(r);
    EXPECT_FALSE(p.wasProjected);
    EXPECT_EQ(p.projectedCycles, 1000u);
}

TEST(Pkp, ZeroFinishedProjectsOnInstructions)
{
    auto r = truncatedResult(1000, 0, 8, 8, 3.2e6);
    // expectedWarpInstructions = 2x executed => cycle projection 2x.
    PkpProjection p = projectKernel(r);
    EXPECT_TRUE(p.wasProjected);
    EXPECT_EQ(p.projectedCycles, 2000u);
}

TEST(TwoLevel, ClassifiesRemainderIntoPrefixGroups)
{
    // Prefix: 2 families with distinct names/sizes; remainder alternates.
    auto prefix = twoFamilies(40);
    std::vector<silicon::LightProfile> light;
    for (int i = 0; i < 200; ++i) {
        silicon::LightProfile lp;
        lp.launchId = static_cast<uint32_t>(i);
        lp.kernelName = (i % 2 == 0) ? "alpha" : "beta";
        lp.grid = {(i % 2 == 0) ? 16u : 256u, 1, 1};
        lp.block = {256, 1, 1};
        light.push_back(lp);
    }
    TwoLevelOptions o;
    o.detailedKernels = 80;
    TwoLevelResult res = twoLevelSelection(prefix, light, o);
    EXPECT_EQ(res.groups.size(), 2u);
    double total = 0;
    for (const auto &g : res.groups)
        total += g.weight;
    EXPECT_DOUBLE_EQ(total, 200.0);
    // Same-name launches land in the same group.
    for (size_t i = 80; i < 200; ++i)
        EXPECT_EQ(res.labels[i], res.labels[i % 2]) << i;
    EXPECT_GT(res.ensembleUnanimity, 0.5);
}

TEST(TwoLevel, SingleGroupAbsorbsEverything)
{
    std::vector<silicon::DetailedProfile> prefix;
    for (int i = 0; i < 20; ++i)
        prefix.push_back(makeProfile(i, "k", 1e6, 1e4, 1000));
    std::vector<silicon::LightProfile> light(50);
    for (int i = 0; i < 50; ++i) {
        light[i].launchId = static_cast<uint32_t>(i);
        light[i].kernelName = "k";
        light[i].grid = {16, 1, 1};
        light[i].block = {128, 1, 1};
    }
    TwoLevelResult res = twoLevelSelection(prefix, light);
    EXPECT_EQ(res.groups.size(), 1u);
    EXPECT_DOUBLE_EQ(res.groups[0].weight, 50.0);
}

TEST(Baselines, FirstNTruncatesAndExtrapolates)
{
    sim::GpuSimulator s(silicon::voltaV100());
    auto w = workload::buildWorkload("stencil");
    ASSERT_TRUE(w);
    auto full = firstNInstructions(s, *w, 1ull << 60);
    EXPECT_TRUE(full.completed);

    auto trunc = firstNInstructions(s, *w, 1'000'000);
    EXPECT_FALSE(trunc.completed);
    EXPECT_LT(trunc.simulatedCycles, full.simulatedCycles);
    // Extrapolation lands within 2x of the true total for this
    // homogeneous workload.
    EXPECT_LT(pka::common::pctError(trunc.projectedAppCycles,
                                    full.projectedAppCycles),
              100.0);
}

TEST(Baselines, TBPointGroupsTwoFamilies)
{
    std::vector<TBPointKernelStats> stats;
    for (int i = 0; i < 30; ++i) {
        TBPointKernelStats a;
        a.launchId = 2 * i;
        a.cycles = 1000 + i % 5;
        a.ipc = 500;
        a.dramUtilPct = 10;
        a.warpInstructions = 1e5;
        a.numCtas = 64;
        stats.push_back(a);
        TBPointKernelStats b;
        b.launchId = 2 * i + 1;
        b.cycles = 9000 + i % 5;
        b.ipc = 80;
        b.dramUtilPct = 70;
        b.l2MissPct = 60;
        b.warpInstructions = 4e6;
        b.numCtas = 512;
        stats.push_back(b);
    }
    TBPointResult res = tbpointSelect(stats);
    EXPECT_LE(res.groups.size(), 6u);
    EXPECT_GE(res.groups.size(), 2u);
    EXPECT_LT(res.projectedErrorPct, 5.0);
}

TEST(Baselines, TBPointGuardrailFatal)
{
    std::vector<TBPointKernelStats> stats(100);
    for (uint32_t i = 0; i < 100; ++i)
        stats[i].launchId = i;
    TBPointOptions o;
    o.maxKernels = 50;
    EXPECT_DEATH(tbpointSelect(stats, o), "guardrail");
}

TEST(Baselines, DetectIterationPeriod)
{
    std::vector<std::string> s1 = {"a", "b", "c", "a", "b", "c",
                                   "a", "b", "c"};
    EXPECT_EQ(detectIterationPeriod(s1), 3u);
    std::vector<std::string> s2 = {"a", "b", "c", "d"};
    EXPECT_EQ(detectIterationPeriod(s2), 0u);
    std::vector<std::string> s3 = {"a", "a", "a", "a"};
    EXPECT_EQ(detectIterationPeriod(s3), 1u);
    std::vector<std::string> tiny = {"a", "b"};
    EXPECT_EQ(detectIterationPeriod(tiny), 0u);
    // Partial trailing iteration still detected.
    std::vector<std::string> s4 = {"a", "b", "c", "a", "b", "c", "a"};
    EXPECT_EQ(detectIterationPeriod(s4), 3u);
}

TEST(Baselines, SingleIterationOnPeriodicWorkload)
{
    sim::GpuSimulator s(silicon::voltaV100());
    auto w = workload::buildWorkload("histo");
    ASSERT_TRUE(w);
    auto res = singleIterationBaseline(s, *w);
    EXPECT_TRUE(res.applicable);
    EXPECT_EQ(res.periodLaunches, 4u);
    EXPECT_NEAR(res.iterations, 20.0, 1e-9);
    EXPECT_GT(res.projectedAppCycles, res.simulatedCycles);
}

TEST(Baselines, SingleIterationInapplicableOnAperiodic)
{
    sim::GpuSimulator s(silicon::voltaV100());
    auto w = workload::buildWorkload("cutcp");
    ASSERT_TRUE(w);
    auto res = singleIterationBaseline(s, *w);
    EXPECT_FALSE(res.applicable);
}

/** Threshold sweep property for the PKP detector. */
class PkpThresholdSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PkpThresholdSweep, TighterThresholdStopsLaterOrEqual)
{
    // Synthetic IPC trajectory: noisy ramp into a plateau.
    auto stop_bucket = [](double threshold) {
        PkpOptions o;
        o.threshold = threshold;
        o.requireFullWave = false;
        IpcStabilityController c(o);
        pka::common::RollingWindow win(100);
        pka::common::Rng rng(4);
        for (int b = 0; b < 4000; ++b) {
            double target = 400.0 * std::min(1.0, b / 600.0);
            win.push(target + rng.normal(0, 12));
            sim::StopController::Snapshot s;
            s.windowFull = win.full();
            s.windowIpcMean = win.mean();
            s.windowIpcStd = win.stddev();
            s.totalCtas = 1000;
            s.finishedCtas = static_cast<uint64_t>(b / 4);
            s.waveSize = 160;
            if (c.shouldStop(s))
                return b;
        }
        return 4000;
    };
    double t = GetParam();
    EXPECT_LE(stop_bucket(t * 10), stop_bucket(t));
    EXPECT_LT(stop_bucket(t * 10), 4000);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PkpThresholdSweep,
                         ::testing::Values(0.025, 0.05, 0.25));

TEST(Pks, ClusterCenterPolicyPicksNearCentroidMember)
{
    auto ps = twoFamilies(30);
    PksOptions o;
    o.representative = RepresentativePolicy::ClusterCenter;
    PksResult res = principalKernelSelection(ps, o);
    EXPECT_EQ(res.groups.size(), 2u);
    // Representatives are still members of their own groups.
    for (const auto &g : res.groups) {
        bool found = false;
        for (uint32_t m : g.members)
            found |= m == g.representative;
        EXPECT_TRUE(found);
    }
}

TEST(Pks, RandomPolicyIsSeedDeterministic)
{
    auto ps = twoFamilies(30);
    PksOptions o;
    o.representative = RepresentativePolicy::Random;
    o.seed = 123;
    auto a = principalKernelSelection(ps, o);
    auto b = principalKernelSelection(ps, o);
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (size_t g = 0; g < a.groups.size(); ++g)
        EXPECT_EQ(a.groups[g].representative, b.groups[g].representative);
}

TEST(Pks, PoliciesAgreeOnGroupStructure)
{
    auto ps = twoFamilies(30);
    for (auto pol : {RepresentativePolicy::FirstChronological,
                     RepresentativePolicy::ClusterCenter,
                     RepresentativePolicy::Random}) {
        PksOptions o;
        o.representative = pol;
        auto res = principalKernelSelection(ps, o);
        EXPECT_EQ(res.groups.size(), 2u);
        double w = 0;
        for (const auto &g : res.groups)
            w += g.weight;
        EXPECT_DOUBLE_EQ(w, 60.0);
    }
}

TEST(Serialize, CsvEscapeRoundTrip)
{
    for (const std::string &s :
         {std::string("plain"), std::string("with,comma"),
          std::string("with\"quote"), std::string("a,b\"c")}) {
        std::string esc = csvEscape(s);
        auto fields = csvSplit(esc);
        ASSERT_EQ(fields.size(), 1u) << s;
        EXPECT_EQ(fields[0], s);
    }
}

TEST(Serialize, CsvSplitMultipleFields)
{
    auto f = csvSplit("a,\"b,c\",d");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[1], "b,c");
    EXPECT_EQ(f[2], "d");
    EXPECT_EQ(csvSplit("").size(), 1u);
}

TEST(Serialize, DetailedProfilesRoundTrip)
{
    auto ps = twoFamilies(5);
    std::stringstream ss;
    writeDetailedProfiles(ss, ps);
    auto back = readDetailedProfiles(ss);
    ASSERT_EQ(back.size(), ps.size());
    for (size_t i = 0; i < ps.size(); ++i) {
        EXPECT_EQ(back[i].launchId, ps[i].launchId);
        EXPECT_EQ(back[i].kernelName, ps[i].kernelName);
        EXPECT_EQ(back[i].cycles, ps[i].cycles);
        auto a = back[i].metrics.toArray();
        auto b = ps[i].metrics.toArray();
        for (size_t c = 0; c < a.size(); ++c)
            EXPECT_NEAR(a[c], b[c], std::abs(b[c]) * 1e-8 + 1e-12);
    }
}

TEST(Serialize, LightProfilesRoundTrip)
{
    std::vector<silicon::LightProfile> ps(3);
    ps[0].launchId = 0;
    ps[0].kernelName = "alpha";
    ps[0].grid = {4, 2, 1};
    ps[0].block = {32, 4, 1};
    ps[1].launchId = 1;
    ps[1].kernelName = "beta,with comma";
    ps[1].grid = {16, 1, 1};
    ps[1].block = {256, 1, 1};
    ps[1].tensorDims = {64, 3, 224, 224};
    ps[2].launchId = 2;
    ps[2].kernelName = "gamma";
    ps[2].grid = {1, 1, 1};
    ps[2].block = {32, 1, 1};

    std::stringstream ss;
    writeLightProfiles(ss, ps);
    auto back = readLightProfiles(ss);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[1].kernelName, "beta,with comma");
    EXPECT_EQ(back[1].tensorDims, ps[1].tensorDims);
    EXPECT_EQ(back[0].grid.total(), 8u);
    EXPECT_TRUE(back[2].tensorDims.empty());
}

TEST(Serialize, SelectionRoundTrip)
{
    auto ps = twoFamilies(20);
    SelectionOutcome sel;
    auto pks = principalKernelSelection(ps);
    sel.groups = pks.groups;
    sel.usedTwoLevel = true;
    sel.detailedCount = 40;
    sel.profilingCostSec = 123.5;
    sel.ensembleUnanimity = 0.875;

    std::stringstream ss;
    writeSelection(ss, sel);
    SelectionOutcome back = readSelection(ss);
    EXPECT_TRUE(back.usedTwoLevel);
    EXPECT_EQ(back.detailedCount, 40u);
    EXPECT_DOUBLE_EQ(back.profilingCostSec, 123.5);
    EXPECT_DOUBLE_EQ(back.ensembleUnanimity, 0.875);
    ASSERT_EQ(back.groups.size(), sel.groups.size());
    for (size_t g = 0; g < sel.groups.size(); ++g) {
        EXPECT_EQ(back.groups[g].representative,
                  sel.groups[g].representative);
        EXPECT_EQ(back.groups[g].members, sel.groups[g].members);
        EXPECT_DOUBLE_EQ(back.groups[g].weight, sel.groups[g].weight);
    }
}

TEST(Serialize, RejectsMalformedInput)
{
    std::stringstream bad1("not a header\n");
    EXPECT_DEATH(readSelection(bad1), "magic");
    std::stringstream bad2("launch_id,kernel_name\n");
    EXPECT_DEATH(readDetailedProfiles(bad2), "column count");
}
