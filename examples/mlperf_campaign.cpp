/**
 * @file
 * MLPerf-scale campaign: the scenario the paper was built for. SSD
 * training launches millions of kernels; detailed profiling of every
 * launch would take months and full simulation would take centuries.
 * This example runs the two-level profiling path end-to-end — detailed
 * profiles for a 2000-launch prefix, lightweight profiles for the rest,
 * classifier mapping, PKS, and PKP-truncated simulation of the
 * representatives — and reports what the same numbers would have cost
 * without PKA.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/experiments.hh"
#include "core/pka.hh"
#include "silicon/profiler.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

int
main()
{
    using namespace pka;

    auto spec = silicon::voltaV100();
    silicon::SiliconGpu gpu(spec);
    sim::GpuSimulator simulator(spec);

    workload::GenOptions gen;
    gen.mlperfScale = 0.02; // 2% of the paper's 5.3M-kernel run
    auto w = workload::buildWorkload("ssd_training", gen);
    if (!w) {
        std::fprintf(stderr, "ssd_training missing\n");
        return 1;
    }
    double inv_scale = 1.0 / w->scale;

    std::printf("SSD training: %zu launches at scale %.3f "
                "(full-size equivalent: %.1fM launches)\n",
                w->launches.size(), w->scale,
                w->launches.size() * inv_scale / 1e6);

    // What the naive approaches would cost (full-size equivalents).
    silicon::DetailedProfiler detailed(gpu);
    auto silicon_run = gpu.run(*w);
    double full_profile_s = detailed.costSeconds(*w) * inv_scale;
    double full_sim_s = static_cast<double>(silicon_run.totalCycles) *
                        inv_scale / core::kSimCyclesPerSecond;
    std::printf("\nwithout PKA (full-size equivalents):\n");
    std::printf("  detailed profiling of every launch: %s\n",
                common::humanTime(full_profile_s).c_str());
    std::printf("  full Accel-Sim-rate simulation:     %s\n",
                common::humanTime(full_sim_s).c_str());

    // The PKA campaign.
    core::PkaOptions opts;
    opts.twoLevelDetailedKernels = 2000;
    core::PkaAppResult res = core::runPka(*w, *w, gpu, simulator, opts);
    if (res.excluded) {
        std::fprintf(stderr, "excluded: %s\n", res.exclusionReason.c_str());
        return 1;
    }

    std::printf("\nwith PKA:\n");
    std::printf("  profiling: %zu detailed + %zu lightweight -> %s "
                "(full-size equivalent %s)\n",
                res.selection.detailedCount,
                w->launches.size() - res.selection.detailedCount,
                common::humanTime(res.selection.profilingCostSec).c_str(),
                common::humanTime(res.selection.profilingCostSec *
                                  inv_scale)
                    .c_str());
    std::printf("  groups: %zu; classifier ensemble unanimity %.0f%%\n",
                res.selection.groups.size(),
                100.0 * res.selection.ensembleUnanimity);
    std::printf("  simulation: %s full-size-equivalent (vs %s)\n",
                common::humanTime(res.pka.simulatedCycles /
                                  core::kSimCyclesPerSecond)
                    .c_str(),
                common::humanTime(full_sim_s).c_str());

    double err = 100.0 *
                 std::abs(res.pka.projectedCycles -
                          static_cast<double>(silicon_run.totalCycles)) /
                 static_cast<double>(silicon_run.totalCycles);
    std::printf("  projected cycles: %.3e (%.1f%% vs silicon)\n",
                res.pka.projectedCycles, err);
    std::printf("  projected IPC: %.1f, projected DRAM util: %.1f%%\n",
                res.pka.projectedIpc(), res.pka.projectedDramUtilPct);

    // Group inventory.
    common::TextTable t({"group", "representative kernel", "members",
                         "weight share %"});
    for (size_t g = 0; g < res.selection.groups.size(); ++g) {
        const auto &grp = res.selection.groups[g];
        t.row()
            .intCell(static_cast<long long>(g))
            .cell(w->launches[grp.representative].program->name)
            .intCell(static_cast<long long>(grp.members.size()))
            .num(100.0 * grp.weight /
                     static_cast<double>(w->launches.size()),
                 1);
    }
    std::printf("\n");
    t.print(std::cout);
    return 0;
}
