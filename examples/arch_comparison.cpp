/**
 * @file
 * The architect's use case (paper Section 5.3): when hardware changes,
 * does the sampled simulation predict the same performance *trend* as the
 * full simulation would? This example evaluates a hypothetical V100
 * variant with double DRAM bandwidth, comparing the speedup predicted by
 * full simulation against the speedup predicted by PKA at a fraction of
 * the simulated cycles — the representative kernels are selected once and
 * reused across both machines, just like the paper carries Volta-selected
 * kernels to Turing and Ampere.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiments.hh"
#include "core/pka.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

int
main()
{
    using namespace pka;

    auto base_spec = silicon::voltaV100();
    auto hypo_spec = base_spec;
    hypo_spec.name = "V100 (2x DRAM bandwidth)";
    hypo_spec.dramBandwidthGBs *= 2.0;
    hypo_spec.l2BandwidthBytesPerClk *= 1.5;

    silicon::SiliconGpu gpu(base_spec);
    sim::GpuSimulator sim_base(base_spec), sim_hypo(hypo_spec);

    const char *apps[] = {"atax",  "stencil", "spmv",
                          "histo", "lavaMD",  "sgemm_4096x4096x4096"};

    common::TextTable t({"workload", "full-sim speedup", "PKA speedup",
                         "PKA simulated-cycle share %"});
    std::vector<double> full_su, pka_su;

    for (const char *name : apps) {
        auto w = workload::buildWorkload(name);
        if (!w) {
            std::fprintf(stderr, "%s missing\n", name);
            return 1;
        }

        // Select once on the baseline machine.
        core::SelectionOutcome sel = core::selectKernels(*w, gpu);

        // Trend by full simulation (expensive).
        auto fs_base = core::fullSimulate(sim_base, *w);
        auto fs_hypo = core::fullSimulate(sim_hypo, *w);
        double full = fs_base.cycles / fs_hypo.cycles;

        // Trend by PKA (cheap): representatives with PKP on each machine.
        core::PkpOptions pkp;
        auto p_base = core::simulateSelection(sim_base, *w, sel, &pkp);
        auto p_hypo = core::simulateSelection(sim_hypo, *w, sel, &pkp);
        double pka = p_base.projectedCycles / p_hypo.projectedCycles;

        full_su.push_back(full);
        pka_su.push_back(pka);
        t.row()
            .cell(name)
            .num(full, 2)
            .num(pka, 2)
            .num(100.0 * (p_base.simulatedCycles + p_hypo.simulatedCycles) /
                     (fs_base.cycles + fs_hypo.cycles),
                 1);
    }
    t.print(std::cout);

    std::printf("\ngeomean speedup from 2x DRAM bandwidth: full sim "
                "%.2fx, PKA %.2fx\n",
                common::geomean(full_su), common::geomean(pka_su));
    std::printf("PKA tracks the full simulator's trend while simulating "
                "a small fraction of the cycles.\n");
    return 0;
}
