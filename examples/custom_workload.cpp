/**
 * @file
 * Bring-your-own workload: how a user describes a new application to the
 * library — programs built from instruction-class segments and memory
 * behaviour, a chronological launch stream with per-launch parameters —
 * and runs Principal Kernel Analysis on it.
 *
 * The example models an iterative solver: a preconditioner kernel, a
 * sparse matrix-vector product and a reduction, launched over 300
 * iterations with a shrinking residual workload.
 */

#include <cstdio>

#include "core/pka.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/builder.hh"

int
main()
{
    using namespace pka;
    using namespace pka::workload;

    // 1. Describe the kernel code identities.
    ProgramPtr precondition =
        ProgramBuilder("jacobi_precondition")
            .seg(InstrClass::GlobalLoad, 3)
            .seg(InstrClass::FpAlu, 9)
            .seg(InstrClass::GlobalStore, 1)
            .mem(/*sectors_per_access=*/1.2, /*l1=*/0.7, /*l2=*/0.8)
            .divergence(1.0)
            .build();
    ProgramPtr spmv =
        ProgramBuilder("csr_spmv")
            .seg(InstrClass::GlobalLoad, 6)
            .seg(InstrClass::FpAlu, 4)
            .seg(InstrClass::IntAlu, 6)
            .seg(InstrClass::Branch, 2)
            .seg(InstrClass::GlobalStore, 1)
            .mem(6.0, 0.25, 0.45)
            .divergence(0.7)
            .build();
    ProgramPtr reduce =
        ProgramBuilder("dot_reduce")
            .seg(InstrClass::GlobalLoad, 2)
            .seg(InstrClass::SharedStore, 2)
            .seg(InstrClass::Sync, 2)
            .seg(InstrClass::SharedLoad, 6)
            .seg(InstrClass::FpAlu, 6)
            .seg(InstrClass::GlobalStore, 1)
            .mem(1.1, 0.4, 0.6)
            .divergence(0.85)
            .build();

    // 2. Lay out the chronological launch stream.
    WorkloadBuilder builder("user", "iterative_solver", /*seed=*/42);
    for (int it = 0; it < 300; ++it) {
        // Residual set shrinks as the solver converges.
        uint32_t rows = 512 - static_cast<uint32_t>(it);
        builder.launch(precondition, {rows, 1, 1}, {256, 1, 1},
                       {.regs = 24, .iterations = 2});
        builder.launch(spmv, {rows, 1, 1}, {128, 1, 1},
                       {.regs = 32, .iterations = 4, .ctaWorkCv = 0.5});
        builder.launch(reduce, {rows / 4 + 1, 1, 1}, {256, 1, 1},
                       {.regs = 20, .smem = 2048, .iterations = 2});
    }
    Workload w = builder.build();
    std::printf("custom workload: %zu launches, %zu distinct kernels, "
                "%.2fM warp instructions\n",
                w.launches.size(), w.distinctPrograms(),
                static_cast<double>(w.totalWarpInstructions()) / 1e6);

    // 3. Run PKA against a V100.
    auto spec = silicon::voltaV100();
    silicon::SiliconGpu gpu(spec);
    sim::GpuSimulator simulator(spec);
    core::PkaAppResult res = core::runPka(w, w, gpu, simulator);
    if (res.excluded) {
        std::fprintf(stderr, "excluded: %s\n", res.exclusionReason.c_str());
        return 1;
    }

    auto truth = gpu.run(w);
    std::printf("PKS found %zu groups over %zu launches\n",
                res.selection.groups.size(), w.launches.size());
    for (size_t g = 0; g < res.selection.groups.size(); ++g) {
        const auto &grp = res.selection.groups[g];
        std::printf("  group %zu: rep launch %u (%s), %zu members\n", g,
                    grp.representative,
                    w.launches[grp.representative].program->name.c_str(),
                    grp.members.size());
    }
    std::printf("silicon: %.3e cycles; PKA projects %.3e (%.1f%% off) "
                "simulating only %.3e cycles\n",
                static_cast<double>(truth.totalCycles),
                res.pka.projectedCycles,
                100.0 * std::abs(res.pka.projectedCycles -
                                 static_cast<double>(truth.totalCycles)) /
                    static_cast<double>(truth.totalCycles),
                res.pka.simulatedCycles);
    return 0;
}
