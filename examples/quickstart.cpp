/**
 * @file
 * Quickstart: run the full Principal Kernel Analysis pipeline on one
 * workload in ~40 lines of API use.
 *
 *   1. build a workload (here: Rodinia's gaussian elimination),
 *   2. profile it on the silicon model,
 *   3. select principal kernels (PKS),
 *   4. simulate only the representatives with IPC-stability early stop
 *      (PKP), and
 *   5. project whole-application statistics.
 */

#include <cstdio>

#include "core/pka.hh"
#include "silicon/silicon_gpu.hh"
#include "sim/simulator.hh"
#include "workload/suites.hh"

int
main()
{
    using namespace pka;

    // The device under study: a Volta V100 for both the "silicon" ground
    // truth and the cycle-level simulator.
    auto spec = silicon::voltaV100();
    silicon::SiliconGpu gpu(spec);
    sim::GpuSimulator simulator(spec);

    // Any registry workload works; gaussian launches 414 kernels that PKS
    // collapses into a single representative.
    auto workload = workload::buildWorkload("gauss_208");
    if (!workload) {
        std::fprintf(stderr, "workload not found\n");
        return 1;
    }

    // Run the whole methodology. The second argument is the launch stream
    // as seen under the profiler; gaussian is not profiler-sensitive, so
    // the same stream serves both roles.
    core::PkaAppResult result =
        core::runPka(*workload, *workload, gpu, simulator);
    if (result.excluded) {
        std::fprintf(stderr, "excluded: %s\n",
                     result.exclusionReason.c_str());
        return 1;
    }

    auto ground_truth = gpu.run(*workload);
    std::printf("workload           : %s/%s (%zu kernel launches)\n",
                workload->suite.c_str(), workload->name.c_str(),
                workload->launches.size());
    std::printf("groups selected    : %zu (two-level: %s)\n",
                result.selection.groups.size(),
                result.selection.usedTwoLevel ? "yes" : "no");
    std::printf("silicon cycles     : %.3e\n",
                static_cast<double>(ground_truth.totalCycles));
    std::printf("PKA projection     : %.3e cycles (%.1f%% error)\n",
                result.pka.projectedCycles,
                100.0 * std::abs(result.pka.projectedCycles -
                                 static_cast<double>(
                                     ground_truth.totalCycles)) /
                    static_cast<double>(ground_truth.totalCycles));
    std::printf("simulated cycles   : %.3e (%.0fx less than full "
                "simulation of every launch)\n",
                result.pka.simulatedCycles,
                static_cast<double>(ground_truth.totalCycles) /
                    result.pka.simulatedCycles);
    std::printf("projected DRAM util: %.1f%%\n",
                result.pka.projectedDramUtilPct);
    return 0;
}
